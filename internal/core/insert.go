package core

import (
	"errors"
	"fmt"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
	"spbtree/internal/wal"
)

// ErrNotFound is returned by Delete when the object is not indexed.
var ErrNotFound = errors.New("core: object not found")

// Insert adds one object (paper Appendix C): compute φ(o) and its SFC value
// (|P| distance computations), append the object to the RAF, and insert the
// (SFC, pointer) entry into the B+-tree. Inserted objects land at the RAF
// tail rather than in SFC order; heavy churn therefore degrades clustering
// until the index is rebuilt, the usual bulk-load-plus-deltas trade-off.
//
// On durable trees (CreateDurable/OpenDurable) Insert instead appends a WAL
// record — returning only once the record is durable via group commit — and
// buffers the object in memory until background compaction folds it into
// the base; an insert with an already-live ID replaces that object
// ("upsert"). Either way it returns ErrClosed after Close.
func (t *Tree) Insert(o metric.Object) error {
	if t.dur != nil {
		return t.durableInsert(o)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	if err := t.validateVec(o, vec); err != nil {
		return err
	}
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)

	off, err := t.raf.Append(o)
	if err != nil {
		return err
	}
	if err := t.raf.Flush(); err != nil {
		return err
	}
	if err := t.bpt.Insert(key, off); err != nil {
		return err
	}
	t.count++
	t.cm.observeInsert(vec)
	t.cm.markDirty()
	// The approximate graph no longer covers the live set; drop it. (Durable
	// inserts buffer instead and leave the graph valid — queries merge them.)
	t.graph = nil
	return nil
}

// Delete removes the object with o's identity (same φ and ID). The B+-tree
// entry is removed; the RAF record is left unreferenced (the RAF is
// append-only, as in the paper's design where objects are compacted only on
// rebuild).
func (t *Tree) Delete(o metric.Object) error {
	if t.dur != nil {
		return t.durableDelete(o)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)

	for c := t.bpt.Seek(key); c.Valid() && c.Key() == key; c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return err
		}
		if obj.ID() == o.ID() {
			if err := t.bpt.Delete(key, c.Val()); err != nil {
				if errors.Is(err, bptree.ErrNotFound) {
					return fmt.Errorf("%w: index entry vanished for object %d", ErrNotFound, o.ID())
				}
				return err
			}
			t.count--
			t.cm.markDirty()
			// The approximate graph still references the deleted object's
			// record; drop it so graph queries can never surface the object.
			t.graph = nil
			return nil
		}
	}
	if c := t.bpt.Seek(key); c.Err() != nil {
		return c.Err()
	}
	return fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
}

// Get retrieves an indexed object by an exemplar with the same φ and ID, or
// ErrNotFound. It exists mainly for tests and tools. On durable trees the
// write buffer is consulted first, so Get sees buffered inserts and respects
// tombstones.
func (t *Tree) Get(o metric.Object) (metric.Object, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)
	if t.wbuf != nil {
		if e, ok := t.wbuf.entries[o.ID()]; ok {
			if e.key == key {
				return e.obj, nil
			}
			return nil, fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
		}
		if _, ok := t.wbuf.tombs[o.ID()]; ok {
			return nil, fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
		}
	}
	for c := t.bpt.Seek(key); c.Valid() && c.Key() == key; c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return nil, err
		}
		if obj.ID() == o.ID() {
			return obj, nil
		}
	}
	return nil, fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
}

// durableInsert is the WAL-backed Insert: validate and map the object under
// the read lock (queries keep flowing), append the record and block for its
// group commit, then fold it into the write buffer under the write lock.
// The object is durable the moment Append acknowledges — a crash after that
// point replays it on the next OpenDurable.
func (t *Tree) durableInsert(o metric.Object) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	if err := t.validateVec(o, vec); err != nil {
		t.mu.RUnlock()
		return err
	}
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)
	d := t.dur
	t.mu.RUnlock()

	// The inflight fence spans LSN allocation through write-buffer apply, so
	// a compaction snapshot never observes a gap below its watermark (see
	// durableState.inflight).
	d.inflight.RLock()
	defer d.inflight.RUnlock()
	lsn, err := d.log.Append(wal.RecInsert, encodeInsertPayload(o, key))
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return ErrClosed
		}
		return err
	}

	t.mu.Lock()
	if t.closed {
		// The record is durable (Append succeeded before the log closed) but
		// the in-memory tree is being torn down: report ErrClosed; replay
		// applies the record on the next open.
		t.mu.Unlock()
		return ErrClosed
	}
	if err := t.applyInsertLocked(o, key, lsn); err != nil {
		t.mu.Unlock()
		return err
	}
	t.cm.observeInsert(vec)
	t.cm.markDirty()
	size := t.deltaSize()
	t.mu.Unlock()
	d.maybeCompact(size)
	return nil
}

// durableDelete is the WAL-backed Delete: existence is checked up front so
// deleting a missing object fails without a WAL record; racing deletes of
// the same ID may both pass the check and log two tombstones, which apply
// (and replay) idempotently.
func (t *Tree) durableDelete(o metric.Object) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)
	id := o.ID()
	exists := false
	if _, ok := t.wbuf.entries[id]; ok {
		exists = true
	} else if _, ok := t.wbuf.tombs[id]; !ok {
		var err error
		exists, err = t.baseHasLocked(key, id)
		if err != nil {
			t.mu.RUnlock()
			return err
		}
	}
	d := t.dur
	t.mu.RUnlock()
	if !exists {
		return fmt.Errorf("%w: id %d", ErrNotFound, id)
	}

	// Same inflight fence as durableInsert: no unapplied LSN may sit below a
	// compaction snapshot's watermark.
	d.inflight.RLock()
	defer d.inflight.RUnlock()
	lsn, err := d.log.Append(wal.RecDelete, encodeDeletePayload(id, key))
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return ErrClosed
		}
		return err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if err := t.applyDeleteLocked(id, key, lsn); err != nil {
		t.mu.Unlock()
		return err
	}
	t.cm.markDirty()
	size := t.deltaSize()
	t.mu.Unlock()
	d.maybeCompact(size)
	return nil
}
