package core

import (
	"errors"
	"fmt"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// ErrNotFound is returned by Delete when the object is not indexed.
var ErrNotFound = errors.New("core: object not found")

// Insert adds one object (paper Appendix C): compute φ(o) and its SFC value
// (|P| distance computations), append the object to the RAF, and insert the
// (SFC, pointer) entry into the B+-tree. Inserted objects land at the RAF
// tail rather than in SFC order; heavy churn therefore degrades clustering
// until the index is rebuilt, the usual bulk-load-plus-deltas trade-off.
func (t *Tree) Insert(o metric.Object) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	if err := t.validateVec(o, vec); err != nil {
		return err
	}
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)

	off, err := t.raf.Append(o)
	if err != nil {
		return err
	}
	if err := t.raf.Flush(); err != nil {
		return err
	}
	if err := t.bpt.Insert(key, off); err != nil {
		return err
	}
	t.count++
	t.cm.observeInsert(vec)
	t.cm.markDirty()
	return nil
}

// Delete removes the object with o's identity (same φ and ID). The B+-tree
// entry is removed; the RAF record is left unreferenced (the RAF is
// append-only, as in the paper's design where objects are compacted only on
// rebuild).
func (t *Tree) Delete(o metric.Object) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)

	for c := t.bpt.Seek(key); c.Valid() && c.Key() == key; c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return err
		}
		if obj.ID() == o.ID() {
			if err := t.bpt.Delete(key, c.Val()); err != nil {
				if errors.Is(err, bptree.ErrNotFound) {
					return fmt.Errorf("%w: index entry vanished for object %d", ErrNotFound, o.ID())
				}
				return err
			}
			t.count--
			t.cm.markDirty()
			return nil
		}
	}
	if c := t.bpt.Seek(key); c.Err() != nil {
		return c.Err()
	}
	return fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
}

// Get retrieves an indexed object by an exemplar with the same φ and ID, or
// ErrNotFound. It exists mainly for tests and tools.
func (t *Tree) Get(o metric.Object) (metric.Object, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.pivots)
	vec := make([]float64, n)
	t.phi(o, vec)
	cells := make(sfc.Point, n)
	t.cells(vec, cells)
	key := t.curve.Encode(cells)
	for c := t.bpt.Seek(key); c.Valid() && c.Key() == key; c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return nil, err
		}
		if obj.ID() == o.ID() {
			return obj, nil
		}
	}
	return nil, fmt.Errorf("%w: id %d", ErrNotFound, o.ID())
}
