package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

func TestSaveOpenRoundTripMemory(t *testing.T) {
	objs := vectorSet(600, 5, 81)
	dist := metric.L2(5)
	idx := page.NewMemStore()
	data := page.NewMemStore()
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idx, DataStore: data, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var meta bytes.Buffer
	if err := tree.WriteMeta(&meta); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(bytes.NewReader(meta.Bytes()), OpenOptions{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		IndexStore: idx, DataStore: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != tree.Len() || reopened.Bits() != tree.Bits() || reopened.Delta() != tree.Delta() {
		t.Fatalf("reopened shape differs: len %d/%d bits %d/%d", reopened.Len(), tree.Len(), reopened.Bits(), tree.Bits())
	}

	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 15; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.05 + 0.2*rng.Float64()
		a, err := tree.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reopened.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
		}
		nnA, err := tree.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		nnB, err := reopened.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range nnA {
			if nnA[i].Dist != nnB[i].Dist {
				t.Fatalf("trial %d: kNN dist %v vs %v", trial, nnA[i].Dist, nnB[i].Dist)
			}
		}
	}
	// Cost models survive the round trip.
	ea, err := tree.EstimateKNN(objs[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := reopened.EstimateKNN(objs[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if ea.EDC != eb.EDC || ea.Radius != eb.Radius {
		t.Errorf("cost model drifted: %+v vs %+v", ea, eb)
	}
}

func TestSaveOpenOnDiskWithMutations(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "index.pages")
	dataPath := filepath.Join(dir, "data.pages")
	metaPath := filepath.Join(dir, "tree.meta")

	objs := wordSet(400, 83)
	dist := metric.EditDistance{MaxLen: 24}

	// Build against real files, save, close everything.
	{
		idx, err := page.NewFileStore(idxPath)
		if err != nil {
			t.Fatal(err)
		}
		data, err := page.NewFileStore(dataPath)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := Build(objs[:350], Options{
			Distance: dist, Codec: metric.StrCodec{},
			IndexStore: idx, DataStore: data, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(metaPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.WriteMeta(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := idx.Close(); err != nil {
			t.Fatal(err)
		}
		if err := data.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen from disk in a fresh process-like state.
	idx, err := page.OpenFileStore(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	data, err := page.OpenFileStore(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	mf, err := os.Open(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	tree, err := Open(mf, OpenOptions{
		Distance: dist, Codec: metric.StrCodec{},
		IndexStore: idx, DataStore: data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 350 {
		t.Fatalf("Len = %d", tree.Len())
	}

	// Mutations continue to work after reopening (RAF tail reload included).
	for _, o := range objs[350:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Delete(objs[0]); err != nil {
		t.Fatal(err)
	}
	q := objs[10]
	got, err := tree.RangeQuery(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(objs[1:], q, 3, dist) // objs[0] deleted
	if len(got) != len(want) {
		t.Fatalf("after reopen+mutate: got %d, want %d", len(got), len(want))
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	objs := vectorSet(50, 3, 84)
	dist := metric.L2(3)
	opts := OpenOptions{
		Distance: dist, Codec: metric.VectorCodec{Dim: 3},
		IndexStore: page.NewMemStore(), DataStore: page.NewMemStore(),
	}
	_ = objs
	if _, err := Open(bytes.NewReader(nil), opts); err == nil {
		t.Error("empty meta accepted")
	}
	if _, err := Open(bytes.NewReader([]byte{99}), opts); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Open(bytes.NewReader([]byte{treeMetaVersion, 0, 5}), opts); err == nil {
		t.Error("truncated meta accepted")
	}
	// Valid meta, but missing stores/metric.
	idx := page.NewMemStore()
	data := page.NewMemStore()
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 3}, IndexStore: idx, DataStore: data})
	if err != nil {
		t.Fatal(err)
	}
	var meta bytes.Buffer
	if err := tree.WriteMeta(&meta); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bytes.NewReader(meta.Bytes()), OpenOptions{Codec: metric.VectorCodec{Dim: 3}, IndexStore: idx, DataStore: data}); err == nil {
		t.Error("missing Distance accepted")
	}
	if _, err := Open(bytes.NewReader(meta.Bytes()), OpenOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 3}}); err == nil {
		t.Error("missing stores accepted")
	}
	// Truncate at every byte boundary of the prefix: must error, not panic.
	raw := meta.Bytes()
	for cut := 0; cut < len(raw) && cut < 200; cut += 7 {
		if _, err := Open(bytes.NewReader(raw[:cut]), OpenOptions{
			Distance: dist, Codec: metric.VectorCodec{Dim: 3},
			IndexStore: idx, DataStore: data,
		}); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
