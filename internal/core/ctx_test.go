package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spbtree/internal/metric"
	"spbtree/internal/pivot"
	"spbtree/internal/sfc"
)

// slowDist wraps a DistanceFunc with a switchable per-call delay, so tests
// can build a tree at full speed and then make verification arbitrarily slow
// — deterministic mid-query deadline expiry on any machine.
type slowDist struct {
	metric.DistanceFunc
	delay atomic.Int64 // nanoseconds per Distance call
}

func (s *slowDist) Distance(a, b metric.Object) float64 {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.DistanceFunc.Distance(a, b)
}

// buildCtxTree builds a Z-order tree (joins work) over n random vectors.
func buildCtxTree(t *testing.T, n, dim int, seed int64) ([]metric.Object, *Tree) {
	t.Helper()
	objs := vectorSet(n, dim, seed)
	tree, err := Build(objs, Options{
		Distance: metric.L2(dim), Codec: metric.VectorCodec{Dim: dim},
		NumPivots: 3, Curve: sfc.ZOrder, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return objs, tree
}

// TestCtxBackgroundEquivalence: the Ctx entry points under context.Background
// answer exactly like the plain ones — the delegation adds no behavior.
func TestCtxBackgroundEquivalence(t *testing.T) {
	objs, tree := buildCtxTree(t, 300, 4, 41)
	q := objs[7]
	dist := metric.L2(4)
	r := 0.25 * dist.MaxDistance()
	ctx := context.Background()

	plain, err1 := tree.RangeQuery(q, r)
	withCtx, err2 := tree.RangeSearchCtx(ctx, q, r)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("range: plain %d results, ctx %d", len(plain), len(withCtx))
	}

	plainK, err1 := tree.KNN(q, 10)
	ctxK, err2 := tree.KNNCtx(ctx, q, 10)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(plainK) != len(ctxK) || plainK[len(plainK)-1].Dist != ctxK[len(ctxK)-1].Dist {
		t.Fatal("kNN: ctx variant disagrees with plain")
	}

	plainJ, err1 := Join(tree, tree, 0.05*dist.MaxDistance())
	ctxJ, err2 := JoinCtx(ctx, tree, tree, 0.05*dist.MaxDistance())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(plainJ) != len(ctxJ) {
		t.Fatalf("join: plain %d pairs, ctx %d", len(plainJ), len(ctxJ))
	}
}

// TestCtxAlreadyCanceled: every entry point refuses an already-canceled
// context with ErrCanceled (wrapping the context's own cause) and returns
// well-formed (possibly empty) partials.
func TestCtxAlreadyCanceled(t *testing.T) {
	objs, tree := buildCtxTree(t, 200, 4, 42)
	q := objs[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	checkErr := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cause %v not preserved", name, err)
		}
	}
	res, err := tree.RangeSearchCtx(ctx, q, 0.5)
	checkErr("range", err)
	for i := 1; i < len(res); i++ {
		if res[i-1].Object.ID() >= res[i].Object.ID() {
			t.Fatal("range partials not in id order")
		}
	}
	if _, err := tree.KNNCtx(ctx, q, 5); !errors.Is(err, ErrCanceled) {
		t.Fatalf("knn: %v", err)
	}
	if _, err := tree.KNNApproxCtx(ctx, q, 5, 50); !errors.Is(err, ErrCanceled) {
		t.Fatalf("knn approx: %v", err)
	}
	if _, err := JoinCtx(ctx, tree, tree, 0.1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("join: %v", err)
	}
	// The WithStats variants carry the same contract and still fill stats.
	_, qs, err := tree.RangeSearchWithStatsCtx(ctx, q, 0.5)
	checkErr("range stats", err)
	if qs.Op != OpRange {
		t.Fatalf("stats not populated on cancellation: %+v", qs)
	}
}

// TestCtxDeadlinePartials: a deadline expiring mid-query yields ErrCanceled
// wrapping context.DeadlineExceeded, and every partial answer satisfies the
// query predicate — interrupted, not wrong. A throttled distance function
// makes the mid-query expiry deterministic.
func TestCtxDeadlinePartials(t *testing.T) {
	objs := vectorSet(800, 4, 43)
	sd := &slowDist{DistanceFunc: metric.L2(4)}
	// Lemma 2 would admit most of this wide scan computation-free, letting
	// the query finish before the deadline; disable it so every candidate
	// pays the throttled distance and mid-query expiry is guaranteed.
	tree, err := Build(objs, Options{
		Distance: sd, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3, Seed: 43,
		DisableLemma2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[11]
	r := 0.9 * sd.MaxDistance() // near-full scan: plenty to interrupt

	sd.delay.Store(int64(100 * time.Microsecond)) // ~80ms uncancelled
	defer sd.delay.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	res, err := tree.RangeSearchCtx(ctx, q, r)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if len(res) >= len(objs) {
		t.Fatal("canceled query verified every object")
	}
	for i, re := range res {
		if re.Dist > r {
			t.Fatalf("partial result %d at distance %v > r %v", i, re.Dist, r)
		}
		if i > 0 && res[i-1].Object.ID() >= re.Object.ID() {
			t.Fatal("partials not in id order")
		}
	}
}

// TestCtxDeadlineLargeTree is the acceptance check: against a 50k-object
// tree, a 1ms deadline on an expensive query returns ErrCanceled with
// partial results in wall time far below the uncancelled query's.
func TestCtxDeadlineLargeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-object build in -short mode")
	}
	const n, dim = 50_000, 8
	objs := vectorSet(n, dim, 44)
	dist := metric.L2(dim)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: dim},
		NumPivots: 3, Selector: pivot.Random{}, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[123]
	r := 0.8 * dist.MaxDistance() // verifies a large share of the 50k objects

	start := time.Now()
	full, err := tree.RangeQuery(q, r)
	if err != nil {
		t.Fatal(err)
	}
	uncancelled := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	partial, err := tree.RangeSearchCtx(ctx, q, r)
	canceled := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("1ms deadline on %v-long query returned err=%v", uncancelled, err)
	}
	if len(partial) >= len(full) {
		t.Fatalf("canceled query returned all %d results", len(full))
	}
	for _, re := range partial {
		if re.Dist > r {
			t.Fatalf("partial at distance %v > r %v", re.Dist, r)
		}
	}
	// "Well under" the uncancelled latency: half is a conservative bound —
	// in practice the canceled query stops within a few ms of its 1ms
	// deadline while the full scan takes hundreds.
	if canceled >= uncancelled/2 {
		t.Errorf("canceled query took %v, not well under uncancelled %v", canceled, uncancelled)
	}
	t.Logf("uncancelled %v (%d results) vs 1ms-deadline %v (%d partials)",
		uncancelled, len(full), canceled, len(partial))
}

// TestCtxStressQueriesRebuildCancel races concurrent queries (random mix of
// range/kNN/join, some canceled mid-flight) against periodic Rebuilds: no
// data races (run with -race), no goroutine leaks, canceled queries surface
// ErrCanceled with well-formed partials, successful ones stay correct.
func TestCtxStressQueriesRebuildCancel(t *testing.T) {
	objs, tree := buildCtxTree(t, 1200, 4, 45)
	dist := metric.L2(4)
	r := 0.3 * dist.MaxDistance()
	before := runtime.NumGoroutine()

	var wrong atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := objs[rng.Intn(len(objs))]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%3 == 0 {
					// A deadline somewhere inside the query's runtime.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				var err error
				var res []Result
				switch i % 4 {
				case 0, 1:
					res, err = tree.RangeSearchCtx(ctx, q, r)
					for _, re := range res {
						if re.Dist > r {
							wrong.Add(1)
						}
					}
				case 2:
					res, err = tree.KNNCtx(ctx, q, 5)
					if err == nil && len(res) != 5 {
						wrong.Add(1)
					}
				case 3:
					_, err = JoinCtx(ctx, tree, tree, 0.02*dist.MaxDistance())
				}
				cancel()
				if err != nil && !errors.Is(err, ErrCanceled) {
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	// Rebuild concurrently: each swap waits for in-flight queries and the
	// queries issued after it must see a consistent compact tree.
	for i := 0; i < 5; i++ {
		if err := tree.Rebuild(nil, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d malformed answers under churn", n)
	}
	if tree.Len() != len(objs) {
		t.Fatalf("tree lost objects under churn: %d != %d", tree.Len(), len(objs))
	}
	// Goroutine-leak check: everything we started must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCtxKNNPartialUsable: a canceled kNN still returns its best-so-far
// candidates sorted by distance — the serving layer's approximate answer.
func TestCtxKNNPartialUsable(t *testing.T) {
	objs := vectorSet(800, 4, 46)
	sd := &slowDist{DistanceFunc: metric.L2(4)}
	tree, err := Build(objs, Options{
		Distance: sd, Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3, Seed: 46,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[5]
	sd.delay.Store(int64(100 * time.Microsecond))
	defer sd.delay.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	res, err := tree.KNNCtx(ctx, q, 200)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Dist > res[i].Dist {
			t.Fatal("canceled kNN partials not sorted")
		}
	}
}
