package core

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// JoinPair is one similarity-join answer ⟨q, o⟩ with d(q, o) ≤ ε.
type JoinPair struct {
	Q, O metric.Object
	Dist float64
}

// IDPair is the remote-safe form of a join answer: the two object IDs and
// their distance, with no object payloads attached. Cluster nodes return
// join results in this form (shipping every matched object back through the
// gather would multiply the wire traffic for no consumer — the serving layer
// only renders IDs and distances), and it is what a scatter-gather join
// ultimately sorts and deduplicates by.
type IDPair struct {
	// QID and OID identify the joined objects.
	QID, OID uint64
	// Dist is d(q, o) ≤ ε.
	Dist float64
}

// IDPairs projects join answers onto their remote-safe form, preserving
// order.
func IDPairs(pairs []JoinPair) []IDPair {
	out := make([]IDPair, len(pairs))
	for i, p := range pairs {
		out[i] = IDPair{QID: p.Q.ID(), OID: p.O.ID(), Dist: p.Dist}
	}
	return out
}

// SortIDPairs orders pairs by (QID, OID), the canonical result order every
// join entry point returns — applying it after a gather makes the merged
// answer byte-identical to a single-tree join.
func SortIDPairs(pairs []IDPair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].QID != pairs[j].QID {
			return pairs[i].QID < pairs[j].QID
		}
		return pairs[i].OID < pairs[j].OID
	})
}

// Join computes SJ(Q, O, ε) with the paper's Algorithm 3 (SJA): a single
// merge pass over the leaf levels of two SPB-trees in ascending SFC order,
// keeping lists of visited-but-still-matchable objects on each side. The
// Z-order curve's coordinatewise monotonicity gives Lemma 6's
// [minRR, maxRR] key window, which both skips verifications and evicts list
// entries that can never match again.
//
// Both trees must have been built over the same mapped space: tq built
// normally with Curve: sfc.ZOrder, and to built with ShareMapping: tq (or
// vice versa). Self-joins (tq == to) are allowed.
//
// On a storage or corruption error the pairs verified so far are returned
// alongside the non-nil error, so callers get a partial answer rather than
// silently losing pairs.
//
// Use JoinWithStats to additionally observe the join's QueryStats, and
// JoinCtx for deadline- and cancellation-aware execution.
func Join(tq, to *Tree, eps float64) ([]JoinPair, error) {
	return JoinCtx(context.Background(), tq, to, eps)
}

// joinImpl is Algorithm 3, accumulating per-stage counts into qs. Leaf-chain
// cursor reads are not reflected in NodesRead (the cursors decode nodes
// internally); the physical side of that traversal still shows up in IndexPA.
// ctx is checked at every merge step and before every distance computation;
// on cancellation the pairs verified so far are returned with a typed
// ErrCanceled.
//
// The merge, list maintenance and geometric pruning (Lemmas 5/6) stay
// serial; surviving pairs go through a joinSink — verified inline in serial
// mode, fanned out to workers with dispatch-ordered commits otherwise
// (exec.go) — so both modes emit identical pairs in identical order.
func joinImpl(ctx context.Context, tq, to *Tree, eps float64, qs *QueryStats) ([]JoinPair, error) {
	if err := joinCompatible(tq, to); err != nil {
		return nil, err
	}
	if eps < 0 {
		return nil, nil
	}
	var sink joinSink
	if slots := tq.workersFor(); slots > 0 {
		sink = tq.newJoinExec(ctx, eps, qs, slots)
	} else {
		sink = &joinSerial{ctx: ctx, t: tq, eps: eps, qs: qs}
	}
	travErr := joinMerge(ctx, tq, to, eps, qs, sink)
	pairs, err := sink.finish()
	if err == nil && travErr != nil && travErr != errStopTraversal {
		err = travErr
	}
	if err == nil && (tq.deltaActive() || to.deltaActive()) {
		pairs, err = joinDelta(ctx, tq, to, eps, qs, pairs)
	}
	return pairs, err
}

// joinDelta appends every join pair involving a buffered insert on either
// side. The base merge above covered base-live × base-live (superseded
// records were skipped at load); what remains decomposes without overlap as
//
//	rule 1:  tq.delta × live(to)            (live = base-live ∪ delta)
//	rule 2:  base-live(tq) × to.delta
//
// each computed by running the buffered object as an internal range query
// against the opposite tree — legal here because runJoin already holds both
// trees' read locks — with rule 2 dropping hits that are themselves buffered
// q-side inserts (already paired by rule 1). This covers self-joins too: both
// orientations of a (buffered, base) pair appear, as in a full merge.
//
// Lemma-2 hits carry an upper bound, not a distance; join pairs always report
// exact distances, so those are recomputed. The pairs are appended in
// (buffered ID, hit ID) order after the merge pairs — JoinWithStats counters
// for the delta portion reflect the internal range pipelines, not a merge.
func joinDelta(ctx context.Context, tq, to *Tree, eps float64, qs *QueryStats, pairs []JoinPair) ([]JoinPair, error) {
	exact := func(t *Tree, a, b metric.Object, r Result) float64 {
		if r.Exact {
			return r.Dist
		}
		qs.Compdists++
		return t.dist.Distance(a, b)
	}
	for _, dq := range tq.deltaEntriesSorted() {
		res, err := to.rangeQuery(ctx, dq.obj, eps, qs)
		if err != nil {
			return pairs, err
		}
		for _, r := range res {
			pairs = append(pairs, JoinPair{Q: dq.obj, O: r.Object, Dist: exact(to, dq.obj, r.Object, r)})
		}
	}
	for _, do := range to.deltaEntriesSorted() {
		res, err := tq.rangeQuery(ctx, do.obj, eps, qs)
		if err != nil {
			return pairs, err
		}
		for _, r := range res {
			if tq.wbuf != nil {
				if _, buffered := tq.wbuf.entries[r.Object.ID()]; buffered {
					continue // rule 1 already emitted ⟨buffered, do⟩
				}
			}
			pairs = append(pairs, JoinPair{Q: r.Object, O: do.obj, Dist: exact(tq, r.Object, do.obj, r)})
		}
	}
	return pairs, nil
}

// joinMerge is the merge pass of Algorithm 3, feeding candidate pairs to the
// sink.
func joinMerge(ctx context.Context, tq, to *Tree, eps float64, qs *QueryStats, sink joinSink) error {
	n := len(tq.pivots)
	var listQ, listO []joinElem

	cq := tq.bpt.SeekFirst()
	co := to.bpt.SeekFirst()
	for cq.Valid() || co.Valid() {
		if err := ctxDone(ctx); err != nil {
			return err
		}
		if err := cq.Err(); err != nil {
			return err
		}
		if err := co.Err(); err != nil {
			return err
		}
		takeQ := false
		switch {
		case !co.Valid():
			takeQ = true
		case !cq.Valid():
			takeQ = false
		default:
			takeQ = cq.Key() <= co.Key()
		}
		if takeQ {
			elem, err := tq.loadJoinElem(cq.Key(), cq.Val(), eps, n, qs)
			if err != nil {
				return err
			}
			if tq.deltaShadowed(elem.obj.ID()) {
				// Superseded by tq's write buffer: dead on this side, and its
				// live replacement (if any) is paired by joinDelta.
				qs.TombstonesSkipped++
				cq.Next()
				continue
			}
			if err := verifyJoin(ctx, elem, &listO, eps, qs, sink, false); err != nil {
				return err
			}
			listQ = append(listQ, elem)
			cq.Next()
		} else {
			elem, err := to.loadJoinElem(co.Key(), co.Val(), eps, n, qs)
			if err != nil {
				return err
			}
			if to.deltaShadowed(elem.obj.ID()) {
				qs.TombstonesSkipped++
				co.Next()
				continue
			}
			if err := verifyJoin(ctx, elem, &listQ, eps, qs, sink, true); err != nil {
				return err
			}
			listO = append(listO, elem)
			co.Next()
		}
	}
	if err := cq.Err(); err != nil {
		return err
	}
	return co.Err()
}

// joinCompatible ensures the two trees share a Z-order mapped space.
func joinCompatible(tq, to *Tree) error {
	if tq.kind != sfc.ZOrder || to.kind != sfc.ZOrder {
		return fmt.Errorf("core: similarity joins require Z-order SPB-trees (Lemma 6); got %v and %v", tq.kind, to.kind)
	}
	if len(tq.pivots) != len(to.pivots) || tq.bits != to.bits || tq.delta != to.delta {
		return fmt.Errorf("core: join trees have incompatible mappings; build one with ShareMapping")
	}
	for i := range tq.pivots {
		a, b := tq.pivots[i], to.pivots[i]
		if a == b {
			continue // shared mapping: same object
		}
		// Trees loaded independently (e.g. two cluster shards reopened from
		// disk) carry distinct pivot objects with identical content; compare
		// by identity and encoding, not interface equality.
		if a.ID() != b.ID() || !bytes.Equal(a.AppendBinary(nil), b.AppendBinary(nil)) {
			return fmt.Errorf("core: join trees use different pivot tables; build one with ShareMapping")
		}
	}
	return nil
}

// joinElem is a visited object kept in a merge list: its SFC key, quantized
// cell point, the object itself, its Lemma 6 window [minRR, maxRR], and its
// cell-space range region [rrLo, rrHi] for the Lemma 5 test.
type joinElem struct {
	key          uint64
	cells        sfc.Point
	obj          metric.Object
	minRR, maxRR uint64
	rrLo, rrHi   sfc.Point
}

// loadJoinElem reads the object behind a leaf entry and precomputes its join
// geometry. The pivot distances come from the quantized cells already stored
// in the index — no distance computations — so the range region is widened
// by one cell of slack, keeping Lemma 5 conservative and therefore exact.
func (t *Tree) loadJoinElem(key, val uint64, eps float64, n int, qs *QueryStats) (joinElem, error) {
	qs.EntriesScanned++
	st := qs.stageStart()
	obj, err := t.raf.Read(val)
	qs.stageAdd(&qs.VerifyTime, st)
	if err != nil {
		return joinElem{}, err
	}
	e := joinElem{
		key:   key,
		cells: make(sfc.Point, n),
		obj:   obj,
		rrLo:  make(sfc.Point, n),
		rrHi:  make(sfc.Point, n),
	}
	t.curve.Decode(key, e.cells)
	maxCell := uint32(uint64(1)<<t.bits - 1)
	for i, c := range e.cells {
		lower := t.cellLower(c) - eps
		if lower < 0 {
			lower = 0
		}
		if t.exact {
			e.rrLo[i] = uint32(math.Ceil(lower))
		} else {
			e.rrLo[i] = t.cellOf(lower)
		}
		hc := uint64(math.Floor((t.cellUpper(c) + eps) / t.delta))
		if hc > uint64(maxCell) {
			hc = uint64(maxCell)
		}
		e.rrHi[i] = uint32(hc)
	}
	e.minRR = t.curve.Encode(e.rrLo)
	e.maxRR = t.curve.Encode(e.rrHi)
	return e, nil
}

// verifyJoin is the Verify function of Algorithm 3: walk the opposite list
// from newest to oldest, evicting entries whose maxRR has fallen behind the
// current key (Lemma 6 — they can never match any later element either),
// skipping entries outside the key window, testing cell containment
// (Lemma 5), and only then handing the pair to the sink for the metric
// distance. flip marks cur as coming from the O side, so emitted pairs keep
// the ⟨q, o⟩ orientation. The sink's per-pair ctx check bounds work between
// cancellation points so even one element's long candidate list cannot
// overrun a deadline; pairs emitted before the cancellation stand.
func verifyJoin(ctx context.Context, cur joinElem, list *[]joinElem, eps float64, qs *QueryStats, sink joinSink, flip bool) error {
	l := *list
	defer func() { *list = l }()
	for i := len(l) - 1; i >= 0; i-- {
		o := l[i]
		if o.maxRR < cur.key {
			// No current or future element can match o: evict.
			qs.ListEvictions++
			copy(l[i:], l[i+1:])
			l = l[:len(l)-1]
			continue
		}
		if o.key < cur.minRR {
			qs.EntriesSkipped++ // Lemma 6 key window
			continue
		}
		if !sfc.Contains(cur.rrLo, cur.rrHi, o.cells) {
			qs.EntriesPruned++ // Lemma 5
			continue
		}
		if err := sink.pair(cur, o, flip); err != nil {
			return err
		}
	}
	return nil
}
