package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
	"spbtree/internal/wal"
)

// allRadius comfortably exceeds the L2 diameter of [0,1]^5, so a range query
// with it returns the whole live set.
const allRadius = 3.0

// walFaultFS is a wal.FS that can fail a countdown of file fsyncs, simulating
// a crash in the window between a WAL write and its acknowledgement.
type walFaultFS struct {
	wal.OSFS
	failSyncs atomic.Int32
}

var errWALFault = errors.New("core_test: injected wal fsync fault")

func (f *walFaultFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	file, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &walFaultFile{File: file, fs: f}, nil
}

type walFaultFile struct {
	wal.File
	fs *walFaultFS
}

func (f *walFaultFile) Sync() error {
	if n := f.fs.failSyncs.Load(); n > 0 && f.fs.failSyncs.CompareAndSwap(n, n-1) {
		return errWALFault
	}
	return f.File.Sync()
}

// durableFixture tracks a durable tree alongside the oracle live-object map
// every acknowledged mutation updates.
type durableFixture struct {
	dir  string
	tree *Tree
	dist metric.DistanceFunc
	live map[uint64]metric.Object
}

func newDurableFixture(t *testing.T, n int, dopts DurableOptions) *durableFixture {
	t.Helper()
	dir := t.TempDir()
	objs := vectorSet(n, 5, 77)
	dist := metric.L2(5)
	tree, err := CreateDurable(dir, objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5},
		Seed: 7, Curve: sfc.ZOrder,
	}, dopts)
	if err != nil {
		t.Fatalf("CreateDurable: %v", err)
	}
	live := make(map[uint64]metric.Object, n)
	for _, o := range objs {
		live[o.ID()] = o
	}
	return &durableFixture{dir: dir, tree: tree, dist: dist, live: live}
}

func (fx *durableFixture) insert(t *testing.T, o metric.Object) {
	t.Helper()
	if err := fx.tree.Insert(o); err != nil {
		t.Fatalf("Insert %d: %v", o.ID(), err)
	}
	fx.live[o.ID()] = o
}

func (fx *durableFixture) delete(t *testing.T, o metric.Object) {
	t.Helper()
	if err := fx.tree.Delete(o); err != nil {
		t.Fatalf("Delete %d: %v", o.ID(), err)
	}
	delete(fx.live, o.ID())
}

func (fx *durableFixture) liveObjs() []metric.Object {
	objs := make([]metric.Object, 0, len(fx.live))
	for _, o := range fx.live {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID() < objs[j].ID() })
	return objs
}

func (fx *durableFixture) liveIDs() []uint64 {
	ids := make([]uint64, 0, len(fx.live))
	for id := range fx.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// refTree builds a fresh non-durable tree over the current live set with the
// durable tree's exact mapping (pivots, quantization, curve), the "rebuilt
// from scratch" reference the acceptance criterion compares against.
func (fx *durableFixture) refTree(t *testing.T) *Tree {
	t.Helper()
	ref, err := Build(fx.liveObjs(), Options{
		Distance: fx.dist, Codec: metric.VectorCodec{Dim: 5},
		ShareMapping: fx.tree, Seed: 7,
	})
	if err != nil {
		t.Fatalf("build reference tree: %v", err)
	}
	t.Cleanup(func() { ref.Close() })
	return ref
}

func rangeResultMap(rs []Result) map[uint64]Result {
	out := make(map[uint64]Result, len(rs))
	for _, r := range rs {
		out[r.Object.ID()] = r
	}
	return out
}

// checkEquivalence runs every read entry point on the durable tree, serial and
// parallel, and demands byte-identical answers to the rebuilt reference — and
// identical compdists for range queries, where the verified set is order-free.
func (fx *durableFixture) checkEquivalence(t *testing.T, qs ...metric.Object) {
	t.Helper()
	ref := fx.refTree(t)
	dur := fx.tree
	defer dur.SetWorkers(0)
	const r, k = 0.45, 10

	for _, q := range qs {
		wantRes, wantQS, err := ref.RangeSearchWithStats(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := rangeResultMap(wantRes)
		wantKNN, err := ref.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{0, 4} {
			dur.SetWorkers(workers)
			label := fmt.Sprintf("q=%d workers=%d", q.ID(), workers)

			gotRes, gotQS, err := dur.RangeSearchWithStats(q, r)
			if err != nil {
				t.Fatal(err)
			}
			got := rangeResultMap(gotRes)
			if len(got) != len(want) {
				t.Fatalf("%s: range returned %d results, want %d", label, len(got), len(want))
			}
			for id, w := range want {
				g, ok := got[id]
				if !ok {
					t.Fatalf("%s: range missing id %d", label, id)
				}
				if g.Dist != w.Dist || g.Exact != w.Exact {
					t.Fatalf("%s: id %d: got (%v, exact=%v), want (%v, exact=%v)",
						label, id, g.Dist, g.Exact, w.Dist, w.Exact)
				}
			}
			if gotQS.Compdists != wantQS.Compdists {
				t.Fatalf("%s: range compdists = %d, reference = %d", label, gotQS.Compdists, wantQS.Compdists)
			}

			gotKNN, err := dur.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotKNN) != len(wantKNN) {
				t.Fatalf("%s: kNN returned %d, want %d", label, len(gotKNN), len(wantKNN))
			}
			for i := range wantKNN {
				if gotKNN[i].Object.ID() != wantKNN[i].Object.ID() || gotKNN[i].Dist != wantKNN[i].Dist {
					t.Fatalf("%s: kNN rank %d: got (%d, %v), want (%d, %v)", label, i,
						gotKNN[i].Object.ID(), gotKNN[i].Dist, wantKNN[i].Object.ID(), wantKNN[i].Dist)
				}
			}

			cnt, err := dur.RangeCount(q, r)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != len(want) {
				t.Fatalf("%s: RangeCount = %d, want %d", label, cnt, len(want))
			}
		}

		// The budgeted search has no rebuilt-tree analogue (its answer depends
		// on traversal order), but serial and parallel must agree exactly.
		dur.SetWorkers(0)
		serialApprox, err := dur.KNNApprox(q, k, 25)
		if err != nil {
			t.Fatal(err)
		}
		dur.SetWorkers(4)
		parallelApprox, err := dur.KNNApprox(q, k, 25)
		if err != nil {
			t.Fatal(err)
		}
		dur.SetWorkers(0)
		if len(serialApprox) != len(parallelApprox) {
			t.Fatalf("q=%d: approx serial %d results, parallel %d", q.ID(), len(serialApprox), len(parallelApprox))
		}
		for i := range serialApprox {
			if serialApprox[i].Object.ID() != parallelApprox[i].Object.ID() || serialApprox[i].Dist != parallelApprox[i].Dist {
				t.Fatalf("q=%d: approx rank %d diverges between serial and parallel", q.ID(), i)
			}
		}

		// Incremental scan: the full ascending-distance sequence must match.
		wantIter := collectIter(t, ref.NearestIterWithin(q, r))
		gotIter := collectIter(t, dur.NearestIterWithin(q, r))
		if len(gotIter) != len(wantIter) {
			t.Fatalf("q=%d: iterator emitted %d, want %d", q.ID(), len(gotIter), len(wantIter))
		}
		for i := range wantIter {
			if gotIter[i] != wantIter[i] {
				t.Fatalf("q=%d: iterator position %d: got %+v, want %+v", q.ID(), i, gotIter[i], wantIter[i])
			}
		}

		// RangeIDs over everything doubles as a live-set identity check.
		ids, err := dur.RangeIDs(q, allRadius)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := fx.liveIDs()
		if len(ids) != len(wantIDs) {
			t.Fatalf("q=%d: live set has %d ids, want %d", q.ID(), len(ids), len(wantIDs))
		}
		for i := range wantIDs {
			if ids[i] != wantIDs[i] {
				t.Fatalf("q=%d: live id[%d] = %d, want %d", q.ID(), i, ids[i], wantIDs[i])
			}
		}
	}

	// Self-join equivalence: pair sets with exact distances must coincide.
	const eps = 0.3
	wantPairs, err := Join(ref, ref, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotPairs, err := Join(dur, dur, eps)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := joinPairMap(wantPairs)
	gotSet := joinPairMap(gotPairs)
	if len(gotSet) != len(wantSet) {
		t.Fatalf("self-join: %d pairs, want %d", len(gotSet), len(wantSet))
	}
	for key, d := range wantSet {
		gd, ok := gotSet[key]
		if !ok {
			t.Fatalf("self-join missing pair %v", key)
		}
		if gd != d {
			t.Fatalf("self-join pair %v: dist %v, want %v", key, gd, d)
		}
	}
}

type iterHit struct {
	id   uint64
	dist float64
}

func collectIter(t *testing.T, it *NearestIter) []iterHit {
	t.Helper()
	defer it.Close()
	var out []iterHit
	for {
		res, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, iterHit{res.Object.ID(), res.Dist})
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator: %v", err)
	}
	return out
}

func joinPairMap(pairs []JoinPair) map[[2]uint64]float64 {
	out := make(map[[2]uint64]float64, len(pairs))
	for _, p := range pairs {
		out[[2]uint64{p.Q.ID(), p.O.ID()}] = p.Dist
	}
	return out
}

// standardMutations buffers inserts, deletes and cross-key upserts so the
// delta holds all three mutation shapes.
func (fx *durableFixture) standardMutations(t *testing.T) {
	t.Helper()
	extra := vectorSet(60, 5, 78)
	for i, o := range extra {
		v := o.(*metric.Vector)
		v.Id = uint64(10000 + i)
		fx.insert(t, v)
	}
	for i := 0; i < 40; i += 2 { // delete some base objects
		fx.delete(t, fx.live[uint64(i)])
	}
	for i := 1; i < 20; i += 2 { // upsert others with new coordinates
		nv := vectorSet(1, 5, int64(200+i))[0].(*metric.Vector)
		nv.Id = uint64(i)
		fx.insert(t, nv)
	}
	// Delete a buffered insert too: tombstone over a delta entry.
	fx.delete(t, fx.live[10001])
}

func (fx *durableFixture) queryPoints() []metric.Object {
	return []metric.Object{fx.live[3], fx.live[10002], vectorSet(1, 5, 999)[0]}
}

func TestDurableQueryEquivalence(t *testing.T) {
	fx := newDurableFixture(t, 400, DurableOptions{CompactThreshold: -1})
	defer fx.tree.Close()

	// Phase 1: everything still in the base generation, empty delta.
	fx.checkEquivalence(t, fx.live[3])

	// Phase 2: a populated write buffer with inserts, deletes and upserts.
	fx.standardMutations(t)
	if fx.tree.DeltaLen() == 0 {
		t.Fatal("mutations did not buffer")
	}
	// Sanity that queries actually crossed the merge path.
	_, qs, err := fx.tree.RangeSearchWithStats(fx.live[3], allRadius)
	if err != nil {
		t.Fatal(err)
	}
	if qs.DeltaCandidates == 0 || qs.TombstonesSkipped == 0 {
		t.Fatalf("delta merge not exercised: %+v", qs)
	}
	fx.checkEquivalence(t, fx.queryPoints()...)

	// Phase 3: after compaction the same answers must come from the new base.
	if err := fx.tree.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if n := fx.tree.DeltaLen(); n != 0 {
		t.Fatalf("DeltaLen after compaction = %d", n)
	}
	if got := fx.tree.Len(); got != len(fx.live) {
		t.Fatalf("Len after compaction = %d, want %d", got, len(fx.live))
	}
	fx.checkEquivalence(t, fx.queryPoints()...)

	// Phase 4: mutations on top of the compacted generation.
	nv := vectorSet(1, 5, 300)[0].(*metric.Vector)
	nv.Id = 20000
	fx.insert(t, nv)
	fx.delete(t, fx.live[5])
	fx.checkEquivalence(t, fx.live[3], nv)
}

// VerifyIntegrity must account for the write buffer: buffered inserts are
// live objects with no leaf entry, shadowed base records are leaf entries
// that are not live. A populated delta is healthy, not a counter corruption.
func TestDurableVerifyWithDelta(t *testing.T) {
	fx := newDurableFixture(t, 200, DurableOptions{CompactThreshold: -1})
	defer fx.tree.Close()
	if err := fx.tree.VerifyIntegrity(); err != nil {
		t.Fatalf("pristine tree: %v", err)
	}
	fx.standardMutations(t)
	if fx.tree.DeltaLen() == 0 {
		t.Fatal("mutations did not buffer")
	}
	if err := fx.tree.VerifyIntegrity(); err != nil {
		t.Fatalf("populated delta: %v", err)
	}
	if err := fx.tree.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	if err := fx.tree.VerifyIntegrity(); err != nil {
		t.Fatalf("after compaction: %v", err)
	}
}

func TestDurableRecoveryAckedPrefix(t *testing.T) {
	fx := newDurableFixture(t, 200, DurableOptions{CompactThreshold: -1})
	fx.standardMutations(t)
	wantIDs := fx.liveIDs()

	// Crash: abandon the tree without Close. Every mutation above was
	// acknowledged, so reopening must recover all of them from the WAL.
	re, err := OpenDurable(fx.dir, LoadOptions{Distance: fx.dist, Codec: metric.VectorCodec{Dim: 5}},
		DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("OpenDurable after crash: %v", err)
	}
	defer re.Close()
	if re.DeltaLen() == 0 {
		t.Fatal("recovery replayed nothing into the write buffer")
	}
	ids, err := re.RangeIDs(fx.liveObjs()[0], allRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(wantIDs) {
		t.Fatalf("recovered live set has %d objects, want %d", len(ids), len(wantIDs))
	}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] {
			t.Fatalf("recovered id[%d] = %d, want %d", i, ids[i], wantIDs[i])
		}
	}

	// The recovered tree must keep accepting writes with no LSN confusion.
	nv := vectorSet(1, 5, 400)[0].(*metric.Vector)
	nv.Id = 30000
	if err := re.Insert(nv); err != nil {
		t.Fatalf("Insert after recovery: %v", err)
	}
}

func TestDurableRecoveryTornWALTail(t *testing.T) {
	fx := newDurableFixture(t, 150, DurableOptions{CompactThreshold: -1})
	for i := 0; i < 10; i++ {
		nv := vectorSet(1, 5, int64(500+i))[0].(*metric.Vector)
		nv.Id = uint64(40000 + i)
		fx.insert(t, nv)
	}
	wantIDs := fx.liveIDs()

	// Crash plus a torn write: garbage bytes past the last durable frame.
	segs, err := wal.Segments(filepath.Join(fx.dir, WALDir), nil)
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v (%d)", err, len(segs))
	}
	segPath := filepath.Join(fx.dir, WALDir, segs[len(segs)-1].Name)
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenDurable(fx.dir, LoadOptions{Distance: fx.dist, Codec: metric.VectorCodec{Dim: 5}},
		DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatalf("OpenDurable over torn tail: %v", err)
	}
	defer re.Close()
	ids, err := re.RangeIDs(fx.liveObjs()[0], allRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(wantIDs) {
		t.Fatalf("torn-tail recovery: %d objects, want %d", len(ids), len(wantIDs))
	}
}

func TestDurableUnackedWriteNotRecovered(t *testing.T) {
	ffs := &walFaultFS{}
	dir := t.TempDir()
	objs := vectorSet(150, 5, 81)
	dist := metric.L2(5)
	tree, err := CreateDurable(dir, objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 5}, Seed: 7,
	}, DurableOptions{CompactThreshold: -1, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}

	mk := func(id uint64, seed int64) *metric.Vector {
		v := vectorSet(1, 5, seed)[0].(*metric.Vector)
		v.Id = id
		return v
	}
	if err := tree.Insert(mk(9001, 601)); err != nil {
		t.Fatal(err)
	}
	// The commit fsync fails: the write must be rejected, rolled back on disk,
	// and invisible after recovery — an unacknowledged write is a lost write.
	ffs.failSyncs.Store(1)
	if err := tree.Insert(mk(9002, 602)); err == nil {
		t.Fatal("Insert succeeded despite a failed WAL fsync")
	}
	if _, err := tree.Get(mk(9002, 602)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed insert is visible in-memory: %v", err)
	}
	if err := tree.Insert(mk(9003, 603)); err != nil {
		t.Fatalf("Insert after rollback: %v", err)
	}

	// Crash (abandon) and reopen with a healthy FS.
	re, err := OpenDurable(dir, LoadOptions{Distance: dist, Codec: metric.VectorCodec{Dim: 5}},
		DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get(mk(9001, 601)); err != nil {
		t.Fatalf("acked insert 9001 lost: %v", err)
	}
	if _, err := re.Get(mk(9003, 603)); err != nil {
		t.Fatalf("acked insert 9003 lost: %v", err)
	}
	if _, err := re.Get(mk(9002, 602)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unacked insert 9002 resurrected: %v", err)
	}
}

func TestDurableCrashMidCompaction(t *testing.T) {
	errBoom := errors.New("injected compaction crash")
	for _, when := range []string{"before-current", "after-current"} {
		t.Run(when, func(t *testing.T) {
			fx := newDurableFixture(t, 200, DurableOptions{CompactThreshold: -1})
			fx.standardMutations(t)
			wantIDs := fx.liveIDs()

			if when == "before-current" {
				fx.tree.dur.hookBeforeCurrent = func() error { return errBoom }
			} else {
				fx.tree.dur.hookAfterCurrent = func() error { return errBoom }
			}
			if err := fx.tree.CompactNow(); !errors.Is(err, errBoom) {
				t.Fatalf("CompactNow returned %v, want the injected crash", err)
			}

			// The in-memory tree must keep serving the exact live set.
			ids, err := fx.tree.RangeIDs(fx.liveObjs()[0], allRadius)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(wantIDs) {
				t.Fatalf("post-crash in-memory live set: %d, want %d", len(ids), len(wantIDs))
			}

			// Crash the process too (abandon), then recover. Depending on the
			// window this lands in the old or the new generation — both must
			// produce the identical live set.
			re, err := OpenDurable(fx.dir, LoadOptions{Distance: fx.dist, Codec: metric.VectorCodec{Dim: 5}},
				DurableOptions{CompactThreshold: -1})
			if err != nil {
				t.Fatalf("OpenDurable after mid-compaction crash: %v", err)
			}
			defer re.Close()
			ids, err = re.RangeIDs(fx.liveObjs()[0], allRadius)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(wantIDs) {
				t.Fatalf("recovered live set: %d, want %d", len(ids), len(wantIDs))
			}
			for i := range wantIDs {
				if ids[i] != wantIDs[i] {
					t.Fatalf("recovered id[%d] = %d, want %d", i, ids[i], wantIDs[i])
				}
			}

			// Recovery must have swept the orphan generation: exactly one left.
			ents, err := os.ReadDir(fx.dir)
			if err != nil {
				t.Fatal(err)
			}
			gens := 0
			for _, e := range ents {
				if e.IsDir() && len(e.Name()) > 4 && e.Name()[:4] == genPrefix {
					gens++
				}
			}
			if gens != 1 {
				t.Fatalf("%d generations survive recovery, want 1", gens)
			}

			// And the recovered tree can compact cleanly.
			if err := re.CompactNow(); err != nil {
				t.Fatalf("CompactNow after recovery: %v", err)
			}
			if got := re.Len(); got != len(wantIDs) {
				t.Fatalf("Len after recovered compaction = %d, want %d", got, len(wantIDs))
			}
		})
	}
}

func TestDurableCompactionRetryAfterFailure(t *testing.T) {
	errBoom := errors.New("transient publish failure")
	fx := newDurableFixture(t, 150, DurableOptions{CompactThreshold: -1})
	defer fx.tree.Close()
	fx.standardMutations(t)

	fx.tree.dur.hookBeforeCurrent = func() error { return errBoom }
	if err := fx.tree.CompactNow(); !errors.Is(err, errBoom) {
		t.Fatalf("CompactNow = %v, want injected failure", err)
	}
	if fx.tree.DeltaLen() == 0 {
		t.Fatal("failed compaction discarded the write buffer")
	}
	fx.tree.dur.hookBeforeCurrent = nil
	if err := fx.tree.CompactNow(); err != nil {
		t.Fatalf("retried CompactNow: %v", err)
	}
	if fx.tree.DeltaLen() != 0 {
		t.Fatal("retried compaction left the buffer populated")
	}
	fx.checkEquivalence(t, fx.queryPoints()...)
}

func TestDurableClosedEntryPoints(t *testing.T) {
	fx := newDurableFixture(t, 120, DurableOptions{CompactThreshold: -1})
	q := fx.live[0]
	if err := fx.tree.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fx.tree.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}

	assertClosed := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("%s on closed tree = %v, want ErrClosed", op, err)
		}
	}
	assertClosed("Insert", fx.tree.Insert(q))
	assertClosed("Delete", fx.tree.Delete(q))
	_, err := fx.tree.RangeQuery(q, 0.4)
	assertClosed("RangeQuery", err)
	_, _, err = fx.tree.RangeSearchWithStats(q, 0.4)
	assertClosed("RangeSearchWithStats", err)
	_, err = fx.tree.KNN(q, 5)
	assertClosed("KNN", err)
	_, err = fx.tree.KNNApprox(q, 5, 10)
	assertClosed("KNNApprox", err)
	_, err = fx.tree.RangeCount(q, 0.4)
	assertClosed("RangeCount", err)
	_, err = fx.tree.RangeIDs(q, 0.4)
	assertClosed("RangeIDs", err)
	_, err = fx.tree.Get(q)
	assertClosed("Get", err)
	assertClosed("CompactNow", fx.tree.CompactNow())
	_, err = Join(fx.tree, fx.tree, 0.3)
	assertClosed("Join", err)
	it := fx.tree.NearestIter(q)
	if _, ok := it.Next(); ok {
		t.Fatal("closed-tree iterator yielded a result")
	}
	assertClosed("NearestIter", it.Err())
}

func TestDurableCloseStopsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	fx := newDurableFixture(t, 100, DurableOptions{})
	nv := vectorSet(1, 5, 700)[0].(*metric.Vector)
	nv.Id = 50000
	fx.insert(t, nv)
	if err := fx.tree.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if err := fx.tree.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The WAL committer and the compactor must both have exited.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDurableIteratorCloseUnblocksMutators(t *testing.T) {
	fx := newDurableFixture(t, 120, DurableOptions{CompactThreshold: -1})
	defer fx.tree.Close()

	it := fx.tree.NearestIter(fx.live[0])
	if _, ok := it.Next(); !ok {
		t.Fatal("iterator yielded nothing")
	}
	it.Close()

	// With the iterator's read lock released, a mutator must get through; run
	// it under a watchdog so a regression fails instead of hanging the suite.
	done := make(chan error, 1)
	go func() {
		nv := vectorSet(1, 5, 800)[0].(*metric.Vector)
		nv.Id = 60000
		done <- fx.tree.Insert(nv)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Insert after iterator Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Insert deadlocked behind a closed iterator")
	}
}

// TestDurableWriteStress hammers the durable tree with concurrent writers,
// deleters, readers and compactions; run with -race it doubles as the write
// path's data-race check. Each goroutine owns a disjoint ID range so the
// final oracle needs no cross-goroutine ordering.
func TestDurableWriteStress(t *testing.T) {
	fx := newDurableFixture(t, 200, DurableOptions{CompactThreshold: 50})
	defer fx.tree.Close()
	tree := fx.tree
	tree.SetWorkers(2)
	defer tree.SetWorkers(0)

	const (
		writers      = 4
		perWriter    = 40
		deleters     = 2
		perDeleter   = 20
		readerRounds = 25
	)
	var wg sync.WaitGroup
	insertErr := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + w)))
			for i := 0; i < perWriter; i++ {
				coords := make([]float64, 5)
				for j := range coords {
					coords[j] = rng.Float64()
				}
				v := metric.NewVector(uint64(100000+w*perWriter+i), coords)
				if err := tree.Insert(v); err != nil {
					insertErr[w] = err
					return
				}
			}
		}(w)
	}
	deleteErr := make([]error, deleters)
	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for i := 0; i < perDeleter; i++ {
				// Disjoint base IDs: deleter d owns [d*perDeleter, (d+1)*perDeleter).
				id := uint64(d*perDeleter + i)
				if err := tree.Delete(fx.live[id]); err != nil {
					deleteErr[d] = err
					return
				}
			}
		}(d)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := fx.live[uint64(150+r)]
			for i := 0; i < readerRounds; i++ {
				if _, err := tree.RangeQuery(q, 0.4); err != nil {
					t.Errorf("reader range: %v", err)
					return
				}
				if _, err := tree.KNN(q, 5); err != nil {
					t.Errorf("reader knn: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := tree.CompactNow(); err != nil {
				t.Errorf("concurrent CompactNow: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	for w, err := range insertErr {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	for d, err := range deleteErr {
		if err != nil {
			t.Fatalf("deleter %d: %v", d, err)
		}
	}

	// Fold the oracle: all stress inserts acked, all stress deletes acked.
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(9000 + w)))
		for i := 0; i < perWriter; i++ {
			coords := make([]float64, 5)
			for j := range coords {
				coords[j] = rng.Float64()
			}
			fx.live[uint64(100000+w*perWriter+i)] = metric.NewVector(uint64(100000+w*perWriter+i), coords)
		}
	}
	for id := uint64(0); id < deleters*perDeleter; id++ {
		delete(fx.live, id)
	}

	if err := tree.CompactNow(); err != nil {
		t.Fatal(err)
	}
	tree.SetWorkers(0)
	wantIDs := fx.liveIDs()
	ids, err := tree.RangeIDs(fx.liveObjs()[0], allRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(wantIDs) {
		t.Fatalf("post-stress live set: %d objects, want %d", len(ids), len(wantIDs))
	}
	for i := range wantIDs {
		if ids[i] != wantIDs[i] {
			t.Fatalf("post-stress id[%d] = %d, want %d", i, ids[i], wantIDs[i])
		}
	}
	if got := tree.Len(); got != len(wantIDs) {
		t.Fatalf("post-stress Len = %d, want %d", got, len(wantIDs))
	}

	// Survive a clean restart with the same contents.
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(fx.dir, LoadOptions{Distance: fx.dist, Codec: metric.VectorCodec{Dim: 5}},
		DurableOptions{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids, err = re.RangeIDs(fx.liveObjs()[0], allRadius)
	if err != nil {
		re.Close()
		t.Fatal(err)
	}
	if len(ids) != len(wantIDs) {
		re.Close()
		t.Fatalf("restarted live set: %d objects, want %d", len(ids), len(wantIDs))
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
