package core

import (
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// costModel implements the paper's Section 4.4 and 5.3 estimators. The union
// distance distribution F(r_1, …, r_|P|) of eq. (2) is represented by a
// reservoir sample of φ-vectors gathered while the tree is built ("can be
// statistically obtained during SPB-tree construction"); per-pivot marginal
// histograms supply F_{p_i} for the eND_k estimate of eq. (5). Node MBBs are
// snapshotted after construction so EPA's indicator sum over tree nodes
// (eq. 6) runs in memory without touching disk.
type costModel struct {
	nPivots   int
	dPlus     float64
	sampleCap int
	rng       *rand.Rand

	seen  int
	vecs  [][]float64 // reservoir of raw φ-vectors
	hists []histogram // per-pivot distance distribution

	boxes [][2][]float64 // per-node MBB as raw distance intervals [lo, hi]
	dirty bool

	// precision is Definition 1's pivot-set quality, measured once at build
	// time over a pair sample; it calibrates the eND_k estimator.
	precision float64
	// pairDists is a sorted sample of true pairwise distances gathered at
	// build time: the overall distance distribution of the homogeneous cost
	// model (the paper's ref [41]) used for eND_k.
	pairDists []float64
	// cellWidth is the tree's δ, the threshold below which the
	// query-sensitive eND_k estimate is trusted outright.
	cellWidth float64
}

const histBins = 256

type histogram struct {
	bins  []int
	width float64
	total int
}

func (h *histogram) add(d float64) {
	i := int(d / h.width)
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	if i < 0 {
		i = 0
	}
	h.bins[i]++
	h.total++
}

// cdf returns F(r) = Pr{d ≤ r}.
func (h *histogram) cdf(r float64) float64 {
	if h.total == 0 {
		return 0
	}
	full := int(r / h.width)
	var cum int
	for i := 0; i < len(h.bins) && i <= full; i++ {
		cum += h.bins[i]
	}
	return float64(cum) / float64(h.total)
}

// quantileForCount returns the smallest r (bin upper edge) with
// total*F(r) ≥ want — the eND_k search of eq. (5).
func (h *histogram) quantileForCount(want float64, scale float64) float64 {
	var cum int
	for i := range h.bins {
		cum += h.bins[i]
		if scale*float64(cum)/float64(h.total) >= want {
			return float64(i+1) * h.width
		}
	}
	return float64(len(h.bins)) * h.width
}

func (cm *costModel) init(nPivots int, dPlus float64, sampleCap int, seed int64) {
	if sampleCap == 0 {
		sampleCap = 1024
	}
	cm.nPivots = nPivots
	cm.dPlus = dPlus
	cm.sampleCap = sampleCap
	cm.rng = rand.New(rand.NewSource(seed + 1))
	cm.hists = make([]histogram, nPivots)
	w := dPlus / histBins
	if w <= 0 {
		w = 1
	}
	for i := range cm.hists {
		cm.hists[i] = histogram{bins: make([]int, histBins), width: w}
	}
}

// observe folds one object's φ-vector into the distributions (reservoir
// sampling keeps the union sample bounded).
func (cm *costModel) observe(vec []float64, rng *rand.Rand) {
	for i, d := range vec {
		cm.hists[i].add(d)
	}
	cm.seen++
	if len(cm.vecs) < cm.sampleCap {
		cm.vecs = append(cm.vecs, append([]float64(nil), vec...))
		return
	}
	if j := rng.Intn(cm.seen); j < cm.sampleCap {
		cm.vecs[j] = append([]float64(nil), vec...)
	}
}

func (cm *costModel) observeInsert(vec []float64) { cm.observe(vec, cm.rng) }

// snapshot deep-copies the mutable distributions (the reservoir and the
// histograms, which observeInsert mutates in place) so compaction can
// serialize the model off-lock while mutators keep updating the original.
// Build-time immutable fields (pairDists, precision) are shared.
func (cm *costModel) snapshot() costModel {
	cp := *cm
	cp.rng = nil
	cp.boxes = nil
	cp.vecs = make([][]float64, len(cm.vecs))
	for i, v := range cm.vecs {
		cp.vecs[i] = append([]float64(nil), v...)
	}
	cp.hists = make([]histogram, len(cm.hists))
	for i, h := range cm.hists {
		cp.hists[i] = histogram{bins: append([]int(nil), h.bins...), width: h.width, total: h.total}
	}
	return cp
}

func (cm *costModel) markDirty() { cm.dirty = true }

// snapshotBoxes walks the tree once and keeps every node's MBB as raw
// distance intervals.
func (cm *costModel) snapshotBoxes(t *Tree) error {
	cm.boxes = cm.boxes[:0]
	lo := make(sfc.Point, cm.nPivots)
	hi := make(sfc.Point, cm.nPivots)
	err := t.bpt.Walk(func(depth int, ref bptree.NodeRef, n *bptree.Node) error {
		t.curve.Decode(ref.BoxLo, lo)
		t.curve.Decode(ref.BoxHi, hi)
		box := [2][]float64{make([]float64, cm.nPivots), make([]float64, cm.nPivots)}
		for i := range lo {
			box[0][i] = t.cellLower(lo[i])
			box[1][i] = t.cellUpper(hi[i])
		}
		cm.boxes = append(cm.boxes, box)
		return nil
	})
	if err != nil {
		return err
	}
	cm.dirty = false
	return nil
}

// estimateNDk returns eND_k, the estimated distance from q to its k-th
// nearest neighbor (eq. 5). Each sampled object's unknown distance to q is
// estimated from its mapped lower bound lb = max_i |v_i − q_i| calibrated by
// the pivot set's measured precision (Definition 1): by construction the
// mean of lb/d over pairs equals the precision, so lb/precision is an
// unbiased-in-the-mean point estimate of d. The k-th sample quantile, scaled
// from sample to population, is eND_k.
func (cm *costModel) estimateNDk(qvec []float64, k, population int, dPlus float64) float64 {
	return cm.estimateNDkSampled(qvec, k, population, dPlus, len(cm.vecs))
}

// estimateNDkSampled is estimateNDk over at most sampleCap reservoir vectors
// — the planner's cheap per-query profile (the reservoir is a uniform sample,
// so a prefix of it is too).
func (cm *costModel) estimateNDkSampled(qvec []float64, k, population int, dPlus float64, sampleCap int) float64 {
	if population == 0 {
		return dPlus
	}
	// The model follows the paper's protocol of querying with database
	// objects: q itself contributes the distance-0 first neighbor, so
	// ND_1 = 0 and the k-th neighbor overall is the (k-1)-th among the
	// remaining objects.
	if k <= 1 {
		return 0
	}
	k--
	population--
	if population < 1 {
		population = 1
	}
	// Homogeneous component: the k/|O| quantile of the overall pairwise
	// distance distribution. The pair sample is sized proportionally to the
	// dataset at build time (see Build) so this quantile stays resolvable
	// down to small k.
	var global float64
	if len(cm.pairDists) > 0 {
		global = quantileAtRank(cm.pairDists, k, population)
	}
	// Query-sensitive component: the same quantile over the sampled mapped
	// lower bounds, calibrated by the pivot set's precision. It is biased
	// low (extreme-value selection on lower bounds) so it only ever raises
	// the homogeneous estimate.
	if sampleCap > len(cm.vecs) {
		sampleCap = len(cm.vecs)
	}
	if sampleCap > 0 {
		prec := cm.precision
		if prec < 0.05 {
			prec = 0.05
		}
		ests := make([]float64, sampleCap)
		for j, v := range cm.vecs[:sampleCap] {
			var lb float64
			for i, d := range v {
				if diff := math.Abs(d - qvec[i]); diff > lb {
					lb = diff
				}
			}
			ests[j] = lb / prec
		}
		sort.Float64s(ests)
		if qs := quantileAtRank(ests, k, population); qs > global {
			global = qs
		}
	}
	if global > dPlus {
		global = dPlus
	}
	return global
}

// quantileAtRank returns the sorted sample's value at the rank matching the
// k-th smallest of a population of the given size.
func quantileAtRank(sorted []float64, k, population int) float64 {
	rank := int(math.Ceil(float64(k) * float64(len(sorted)) / float64(population)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// prInRegion estimates Pr(φ(o) ∈ RR(q, r)) — eq. (4) — as the sample
// fraction of φ-vectors within the raw-space box [qvec−r, qvec+r].
func (cm *costModel) prInRegion(qvec []float64, r float64) float64 {
	if len(cm.vecs) == 0 {
		return 0
	}
	in := 0
	for _, v := range cm.vecs {
		ok := true
		for i, d := range v {
			if d < qvec[i]-r || d > qvec[i]+r {
				ok = false
				break
			}
		}
		if ok {
			in++
		}
	}
	return float64(in) / float64(len(cm.vecs))
}

// CostEstimate carries the model's predictions for one query.
type CostEstimate struct {
	// EDC is the estimated number of distance computations (eq. 3 / 7).
	EDC float64
	// EPA is the estimated number of page accesses (eq. 6 / 8).
	EPA float64
	// Radius is the search radius used: r for range queries, eND_k for kNN.
	Radius float64
}

// ensureCostBoxes refreshes the cost model's MBB snapshot if writes have
// dirtied it, under the write lock — the snapshot mutates the model, so it
// may not run concurrently with queries that read it. Estimation entry
// points call this before taking the read lock; the in-query planner never
// does (it falls back to fixed behavior on a dirty model instead).
func (t *Tree) ensureCostBoxes() error {
	t.mu.RLock()
	dirty := t.cm.dirty
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !dirty {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if !t.cm.dirty {
		return nil
	}
	return t.cm.snapshotBoxes(t)
}

// estimateRangeVec is the range cost estimate for an already-mapped query.
// Callers hold the read lock and guarantee the MBB snapshot is clean.
func (t *Tree) estimateRangeVec(qvec []float64, r float64) CostEstimate {
	pr := t.cm.prInRegion(qvec, r)
	edc := float64(len(t.pivots)) + float64(t.count)*pr
	epa := t.cm.pageEstimate(qvec, r, edc, t.raf.ObjectsPerPage())
	return CostEstimate{EDC: edc, EPA: epa, Radius: r}
}

// estimateKNNVec is the kNN cost estimate for an already-mapped query, with
// the eND_k reservoir scan capped at sampleCap vectors (the planner's cheap
// profile; pass len(t.cm.vecs) for the full-fidelity estimate). Callers hold
// the read lock and guarantee the MBB snapshot is clean.
func (t *Tree) estimateKNNVec(qvec []float64, k, sampleCap int) CostEstimate {
	eND := t.cm.estimateNDkSampled(qvec, k, t.count, t.dPlus, sampleCap)
	pr := t.cm.prInRegion(qvec, eND)
	edc := float64(len(t.pivots)) + float64(t.count)*pr
	epa := t.cm.pageEstimate(qvec, eND, edc, t.raf.ObjectsPerPage())
	return CostEstimate{EDC: edc, EPA: epa, Radius: eND}
}

// EstimateRange predicts the cost of RangeQuery(q, r) per eqs. (3), (4) and
// (6). The φ(q) computation uses the unwrapped metric so estimation does not
// disturb the compdists counter. If writes have dirtied the MBB snapshot it
// is refreshed first (under the write lock).
func (t *Tree) EstimateRange(q metric.Object, r float64) (CostEstimate, error) {
	if err := t.ensureCostBoxes(); err != nil {
		return CostEstimate{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return CostEstimate{}, ErrClosed
	}
	return t.estimateRangeVec(t.quietPhi(q), r), nil
}

// EstimateKNN predicts the cost of KNN(q, k): eND_k is estimated per eq. (5)
// with a query-sensitive F_q in the spirit of Ciaccia-Nanni [40] — each
// sampled object's distance to q is approximated by the midpoint of its
// triangle-inequality interval [max_i |v_i−q_i|, min_i (v_i+q_i)] — and then
// the range estimators apply at radius eND_k (Lemma 4). If writes have
// dirtied the MBB snapshot it is refreshed first (under the write lock).
func (t *Tree) EstimateKNN(q metric.Object, k int) (CostEstimate, error) {
	if err := t.ensureCostBoxes(); err != nil {
		return CostEstimate{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return CostEstimate{}, ErrClosed
	}
	return t.estimateKNNVec(t.quietPhi(q), k, len(t.cm.vecs)), nil
}

// EstimateJoin predicts the cost of Join(tq, to, eps) per eqs. (7) and (8):
// EDC sums, over tq's sampled φ-vectors scaled to |Q|, the expected number
// of O-objects inside each range region; EPA is one sequential pass over
// both trees' leaf and RAF pages.
func EstimateJoin(tq, to *Tree, eps float64) (CostEstimate, error) {
	if len(tq.cm.vecs) == 0 || to.count == 0 {
		return CostEstimate{Radius: eps}, nil
	}
	var sum float64
	for _, qvec := range tq.cm.vecs {
		sum += float64(to.count) * to.cm.prInRegion(qvec, eps)
	}
	edc := sum / float64(len(tq.cm.vecs)) * float64(tq.count)
	epa := float64(tq.bpt.NumLeaves()) + float64(to.bpt.NumLeaves())
	if f := tq.raf.ObjectsPerPage(); f > 0 {
		epa += float64(tq.count) / f
	}
	if tq != to {
		if f := to.raf.ObjectsPerPage(); f > 0 {
			epa += float64(to.count) / f
		}
	}
	return CostEstimate{EDC: edc, EPA: epa, Radius: eps}, nil
}

// pageEstimate implements eq. (6): the MBB-intersection indicator summed
// over all tree nodes plus EDC/f RAF pages.
func (cm *costModel) pageEstimate(qvec []float64, r, edc, f float64) float64 {
	var ios float64
	for _, box := range cm.boxes {
		hit := true
		for i := range qvec {
			if box[1][i] < qvec[i]-r || box[0][i] > qvec[i]+r {
				hit = false
				break
			}
		}
		if hit {
			ios++
		}
	}
	if f > 0 {
		ios += edc / f
	}
	return math.Ceil(ios)
}

// quietPhi computes φ(q) without counting the distance computations, so
// cost estimation never perturbs measurements.
func (t *Tree) quietPhi(q metric.Object) []float64 {
	vec := make([]float64, len(t.pivots))
	raw := t.dist.Unwrap()
	for i, p := range t.pivots {
		vec[i] = raw.Distance(q, p)
	}
	return vec
}
