package core

import (
	"math"
	"sort"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// TestBoundedMatchesExact is the kernel layer's end-to-end contract
// (DESIGN.md §10): toggling threshold-aware kernels on the same tree changes
// no observable output — byte-identical results and identical Verified /
// Compdists / Discarded counters for range and kNN — while Abandoned stays
// zero with kernels off and becomes positive on workloads where early
// abandoning fires.
func TestBoundedMatchesExact(t *testing.T) {
	totalAbandoned := map[string]int64{}
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			defer tree.Close()
			if !tree.BoundedKernels() {
				t.Fatalf("%s: bounded kernels not enabled by Build for %T", s.name, s.dist)
			}
			maxD := s.dist.MaxDistance()
			queries := s.objs[:8]

			type outcome struct {
				res []Result
				qs  QueryStats
			}
			collect := func() []outcome {
				var out []outcome
				for _, q := range queries {
					res, qs, err := tree.RangeSearchWithStats(q, 0.15*maxD)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, outcome{res, qs})
					res, qs, err = tree.KNNWithStats(q, 6)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, outcome{res, qs})
				}
				return out
			}

			tree.SetBoundedKernels(false)
			exact := collect()
			for i, o := range exact {
				if o.qs.Abandoned != 0 {
					t.Fatalf("query %d: Abandoned = %d with kernels disabled", i, o.qs.Abandoned)
				}
			}
			tree.SetBoundedKernels(true)
			bounded := collect()

			for i := range exact {
				label := s.name + "/toggle"
				sameResults(t, label, exact[i].res, bounded[i].res)
				e, b := exact[i].qs, bounded[i].qs
				if e.Verified != b.Verified || e.Compdists != b.Compdists || e.Discarded != b.Discarded {
					t.Fatalf("query %d: counters diverge across toggle:\nexact:   verified=%d compdists=%d discarded=%d\nbounded: verified=%d compdists=%d discarded=%d",
						i, e.Verified, e.Compdists, e.Discarded, b.Verified, b.Compdists, b.Discarded)
				}
				totalAbandoned[s.name] += b.Abandoned
			}
		})
	}
	// Edit distance over words abandons aggressively (band collapse on short
	// thresholds); if this is ever zero the kernels are not actually wired in.
	if totalAbandoned["words-edit"] == 0 {
		t.Error("words-edit: no evaluation abandoned with bounded kernels on")
	}
}

// TestBoundedParallelMatchesSerial re-runs the serial-vs-parallel identity
// with bounded kernels explicitly enabled across K ∈ {1, 2, 4, 8}: the
// ordered-commit replay must reproduce the serial bound evolution, so
// results, Verified, Compdists and Abandoned are identical in every worker
// mode.
func TestBoundedParallelMatchesSerial(t *testing.T) {
	for _, s := range setups() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			tree := buildSetup(t, s)
			defer tree.Close()
			tree.SetBoundedKernels(true)
			maxD := s.dist.MaxDistance()
			queries := s.objs[:5]

			type baseline struct {
				res []Result
				qs  QueryStats
			}
			run := func(q metric.Object, tag string) baseline {
				var b baseline
				var err error
				switch tag {
				case "range":
					b.res, b.qs, err = tree.RangeSearchWithStats(q, 0.12*maxD)
				case "knn":
					b.res, b.qs, err = tree.KNNWithStats(q, 7)
				}
				if err != nil {
					t.Fatalf("%s (workers=%d): %v", tag, tree.Workers(), err)
				}
				return b
			}
			tags := []string{"range", "knn"}

			tree.SetWorkers(1)
			var serial []baseline
			for _, q := range queries {
				for _, tag := range tags {
					serial = append(serial, run(q, tag))
				}
			}
			for _, workers := range []int{2, 4, 8} {
				tree.SetWorkers(workers)
				i := 0
				for _, q := range queries {
					for _, tag := range tags {
						label := s.name + "/" + tag + "/bounded"
						b := run(q, tag)
						sameResults(t, label, serial[i].res, b.res)
						sameVerification(t, label, serial[i].qs, b.qs)
						i++
					}
				}
			}
		})
	}
}

// TestBoundedJoinMatchesExact checks Algorithm 3 under bounded kernels: the
// ε-bounded evaluation returns the same pairs and counters as exact
// evaluation, serially and for every worker count, with Abandoned identical
// across worker modes.
func TestBoundedJoinMatchesExact(t *testing.T) {
	const dim = 4
	build := func(objs []metric.Object, seed int64, share *Tree) *Tree {
		tree, err := Build(objs, Options{
			Distance: metric.L2(dim), Codec: metric.VectorCodec{Dim: dim},
			NumPivots: 3, Curve: sfc.ZOrder, Seed: seed, ShareMapping: share,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	tq := build(vectorSet(300, dim, 71), 71, nil)
	to := build(vectorSet(250, dim, 72), 72, tq)
	defer tq.Close()
	defer to.Close()
	eps := 0.08 * metric.L2(dim).MaxDistance()

	tq.SetWorkers(1)
	to.SetWorkers(1)
	tq.SetBoundedKernels(false)
	to.SetBoundedKernels(false)
	want, wantQS, err := JoinWithStats(tq, to, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("join baseline empty; widen eps")
	}
	if wantQS.Abandoned != 0 {
		t.Fatalf("exact join Abandoned = %d, want 0", wantQS.Abandoned)
	}

	tq.SetBoundedKernels(true)
	to.SetBoundedKernels(true)
	var serialBounded QueryStats
	for _, workers := range []int{1, 2, 4, 8} {
		tq.SetWorkers(workers) // the Q side drives the join's worker pool
		got, gotQS, err := JoinWithStats(tq, to, eps)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if want[i].Q.ID() != got[i].Q.ID() || want[i].O.ID() != got[i].O.ID() || want[i].Dist != got[i].Dist {
				t.Fatalf("workers=%d: pair %d = (%d,%d,%v), want (%d,%d,%v)", workers, i,
					got[i].Q.ID(), got[i].O.ID(), got[i].Dist, want[i].Q.ID(), want[i].O.ID(), want[i].Dist)
			}
		}
		if gotQS.Verified != wantQS.Verified || gotQS.Compdists != wantQS.Compdists || gotQS.Results != wantQS.Results {
			t.Fatalf("workers=%d: bounded join counters (verified=%d compdists=%d results=%d) != exact (%d, %d, %d)",
				workers, gotQS.Verified, gotQS.Compdists, gotQS.Results, wantQS.Verified, wantQS.Compdists, wantQS.Results)
		}
		if workers == 1 {
			serialBounded = gotQS
		} else if gotQS.Abandoned != serialBounded.Abandoned {
			t.Fatalf("workers=%d: Abandoned = %d, serial bounded = %d", workers, gotQS.Abandoned, serialBounded.Abandoned)
		}
	}
}

// TestNearestIterWithin pins the limited iterator: it emits exactly the
// range-query answer set in ascending distance order (objects at the limit
// included), and a +Inf limit degenerates to the full NearestIter scan.
func TestNearestIterWithin(t *testing.T) {
	s := setups()[0]
	tree := buildSetup(t, s)
	defer tree.Close()
	q := s.objs[11]
	limit := 0.2 * s.dist.MaxDistance()

	want, err := tree.RangeQuery(q, limit)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].Dist != want[j].Dist {
			return want[i].Dist < want[j].Dist
		}
		return want[i].Object.ID() < want[j].Object.ID()
	})
	// Range answers proved by Lemma 2 carry upper bounds, not exact
	// distances; recompute so the comparison is distance-exact.
	for i := range want {
		want[i].Dist = s.dist.Distance(q, want[i].Object)
		want[i].Exact = true
	}

	it := tree.NearestIterWithin(q, limit)
	var got []Result
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("NearestIterWithin emitted %d objects, range query found %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Object.ID() != want[i].Object.ID() || got[i].Dist != want[i].Dist {
			t.Fatalf("item %d: got (id=%d d=%v), want (id=%d d=%v)",
				i, got[i].Object.ID(), got[i].Dist, want[i].Object.ID(), want[i].Dist)
		}
		if got[i].Dist > limit {
			t.Fatalf("item %d at distance %v beyond limit %v", i, got[i].Dist, limit)
		}
	}

	full := tree.NearestIterWithin(q, math.Inf(1))
	n := 0
	for {
		if _, ok := full.Next(); !ok {
			break
		}
		n++
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(s.objs) {
		t.Fatalf("+Inf limit enumerated %d objects, want %d", n, len(s.objs))
	}
}

// TestDisableBoundedKernelsOption pins the Options escape hatch: a tree
// built with DisableBoundedKernels never abandons and reports
// BoundedKernels() == false, and SetBoundedKernels(true) on a metric with no
// kernel stays off.
func TestDisableBoundedKernelsOption(t *testing.T) {
	s := setups()[2] // words-edit: the workload where abandoning fires
	opts := s.opts
	opts.Distance = s.dist
	opts.DisableBoundedKernels = true
	tree, err := Build(s.objs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.BoundedKernels() {
		t.Fatal("DisableBoundedKernels did not disable kernels")
	}
	_, qs, err := tree.RangeSearchWithStats(s.objs[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Abandoned != 0 {
		t.Fatalf("Abandoned = %d on a kernel-disabled tree", qs.Abandoned)
	}
	tree.SetBoundedKernels(true)
	if !tree.BoundedKernels() {
		t.Fatal("SetBoundedKernels(true) did not re-enable for a bounded metric")
	}

	// A metric with no kernel can never be switched on.
	objs := make([]metric.Object, 64)
	for i := range objs {
		objs[i] = metric.NewSeq(uint64(i), wordSet(1, int64(i))[0].(*metric.Str).S+"ACGTACGT")
	}
	plain, err := Build(objs, Options{Distance: metric.TrigramAngular{}, Codec: metric.SeqCodec{}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.BoundedKernels() {
		t.Fatal("TrigramAngular reported bounded kernels")
	}
	plain.SetBoundedKernels(true)
	if plain.BoundedKernels() {
		t.Fatal("SetBoundedKernels(true) enabled kernels for an unbounded metric")
	}
}
