package core

import (
	"context"
	"time"

	"spbtree/internal/metric"
	"spbtree/internal/obs"
)

// Operation names used for QueryStats.Op and the aggregate metrics registry.
const (
	// OpRange labels range queries (Algorithm 1).
	OpRange = "range"
	// OpKNN labels exact kNN queries (Algorithm 2).
	OpKNN = "knn"
	// OpKNNApprox labels budgeted approximate kNN queries.
	OpKNNApprox = "knn_approx"
	// OpJoin labels similarity joins (Algorithm 3).
	OpJoin = "join"
	// OpKNNGraph labels approximate kNN queries answered by beam search over
	// the NN-descent graph tier (DESIGN.md §14).
	OpKNNGraph = "knn_graph"
)

// QueryStats records a single query's cost, stage by stage, in the paper's
// metrics: distance computations ("compdists") and page accesses ("PA",
// split into B+-tree index pages and RAF data pages), plus the per-stage
// pruning counts that explain them. DESIGN.md §7 defines every counter and
// maps it to the paper's tables and figures.
//
// Counts are exact and race-free (incremented at the algorithm's own call
// sites); the I/O fields are before/after deltas of the shared store
// counters, so attributing them to one query assumes no other query runs on
// the tree concurrently. On a partial-result error the stats cover the work
// done up to the failure.
//
// Under the parallel execution engine (Options.Workers > 1, the default;
// DESIGN.md §9) the verification counters — Lemma2Included, Verified,
// Discarded, Abandoned, Compdists — and the result set are still identical
// to serial execution: ranges and joins verify a bound-independent candidate
// set, and kNN commits verdicts in dispatch order against the committed
// bound.
// VerifyTime becomes the summed worker time (it can exceed Elapsed), and on
// error or cancellation the traversal-side diagnostics may include work a
// serial run would not have reached before stopping.
type QueryStats struct {
	// Op identifies the operation: OpRange, OpKNN, OpKNNApprox, OpKNNGraph
	// or OpJoin.
	Op string

	// Plan records the adaptive planner's execution decision and its inputs
	// (plan.go); the zero value means no planner ran for this query. On a
	// scatter-gather query the forest/cluster gather side adds its shard
	// pruning and staging fields.
	Plan PlanInfo

	// --- filtering stage (index traversal, no objects touched) ----------

	// NodesRead counts B+-tree nodes decoded by the traversal.
	NodesRead int64
	// NodesPruned counts subtrees discarded by their MBB: the Lemma 1
	// region test for range queries, the Lemma 3 MIND bound for kNN.
	NodesPruned int64
	// EntriesScanned counts leaf entries examined (their SFC key decoded).
	EntriesScanned int64
	// EntriesPruned counts examined entries discarded by the pivot filter
	// without touching the object: the per-entry Lemma 1 region test, the
	// per-entry Lemma 3 MIND bound, or the join's Lemma 5 cell test.
	EntriesPruned int64
	// EntriesSkipped counts leaf entries never examined at all thanks to
	// the SFC merge step (Algorithm 1 lines 14-20), BIGMIN skip scans, or
	// the join's Lemma 6 key window.
	EntriesSkipped int64
	// HeapPushes counts priority-queue insertions of the kNN traversal
	// (nodes and leaf entries), the paper's Table 5 memory-pressure signal.
	HeapPushes int64
	// ListEvictions counts merge-list elements retired by Lemma 6 during a
	// similarity join (join only).
	ListEvictions int64

	// --- verification stage (objects fetched from the RAF) --------------

	// Lemma2Included counts answers proved by Lemma 2 without computing
	// their distance (their object is still fetched for the result set).
	Lemma2Included int64
	// Verified counts objects whose exact distance was computed.
	Verified int64
	// Discarded counts verified objects that failed the predicate — the
	// filter's false positives.
	Discarded int64
	// DeltaCandidates counts candidates drawn from the durable write buffer
	// (buffered inserts merged into the search) rather than the base tree.
	// Zero on non-durable trees and when the buffer is empty.
	DeltaCandidates int64
	// TombstonesSkipped counts base candidates discarded at verification
	// because the write buffer shadows their ID (a tombstone or a newer
	// buffered version). Their RAF read already happened — the skipped
	// verification saves the distance computation, not the page access.
	TombstonesSkipped int64
	// Abandoned counts verifications resolved by a threshold-aware kernel
	// (DESIGN.md §10) without completing the exact distance: the evaluation
	// proved d > bound and stopped. Always ≤ Verified, and each abandoned
	// evaluation still counts one Compdists — the cost model charges
	// evaluations, so exact and bounded runs report identical Compdists.
	// Zero when the metric has no bounded kernel or kernels are disabled.
	Abandoned int64
	// BatchedCandidates counts candidates whose verification went through a
	// blocked batch kernel (DESIGN.md §13) — a whole leaf page of candidates
	// evaluated by one metric.BatchDistanceAtMost call — rather than a scalar
	// evaluation. Results and every other counter are identical either way;
	// this counter exists so benchmarks and tests can prove the batch path
	// actually engaged (a silent fallback to scalar shows up as zero). It is
	// ≥ Verified's batched share and can exceed Verified for kNN, where a
	// batched candidate may still be pruned at commit (counted under
	// EntriesPruned, exactly like the parallel engine's stale-bound prunes).
	// Zero when the metric has no batch kernel or batch kernels are disabled.
	BatchedCandidates int64
	// GraphHops counts beam-search expansions of a graph-tier query
	// (DESIGN.md §14): nodes whose neighbor list was explored. Zero on every
	// other operation.
	GraphHops int64
	// GraphCandidates counts graph-tier candidates whose distance was
	// evaluated during beam search — the graph-side share of Verified. The
	// remainder of Verified on a graph query is DeltaCandidates (buffered
	// inserts merged brute-force). Zero on every other operation.
	GraphCandidates int64
	// Results is the number of answers returned.
	Results int

	// --- cost totals in the paper's metrics ------------------------------

	// Compdists is the paper's distance-computation count: the |P| pivot
	// mappings of the query object plus one per Verified object. It
	// reconciles exactly with the tree-lifetime counter delta when queries
	// do not run concurrently.
	Compdists int64
	// IndexPA and DataPA are physical page accesses below the buffer
	// caches on the B+-tree and RAF stores; IndexPA+DataPA is the paper's
	// PA.
	IndexPA int64
	DataPA  int64
	// IndexCacheHits/DataCacheHits count reads served above the stores by
	// the buffer caches (invisible to PA, by the paper's definition).
	// Misses equal the physical reads and are not reported separately.
	IndexCacheHits int64
	DataCacheHits  int64

	// --- wall clock -------------------------------------------------------

	// PlanTime covers query preparation: the pivot mapping φ(q) and range-
	// region computation. Populated by the WithStats entry points only.
	PlanTime time.Duration
	// VerifyTime covers RAF reads plus distance computations. Populated by
	// the WithStats entry points only.
	VerifyTime time.Duration
	// FilterTime is the remainder of Elapsed: index traversal and pruning.
	// Populated by the WithStats entry points only.
	FilterTime time.Duration
	// Elapsed is the query's total wall time.
	Elapsed time.Duration

	// timed enables the per-stage clocks; the plain entry points leave it
	// off so the hot path never calls time.Now per verified object.
	timed bool
}

// PageAccesses returns IndexPA+DataPA, the paper's PA metric.
func (s *QueryStats) PageAccesses() int64 { return s.IndexPA + s.DataPA }

// Merge folds another query's stats into s — the gather-side aggregation of
// a scatter-gather query (forest shards, cluster nodes). Work counters and
// cost totals add, so Compdists/PA reconcile with the total work across all
// branches exactly as on a single tree; wall clocks take the maximum, the
// honest elapsed figure for branches that ran in parallel. Merge only reads
// exported fields, so it works identically on stats decoded from a wire
// payload (gob drops the unexported timing flag, which only gates clock
// collection, not reporting).
func (s *QueryStats) Merge(o QueryStats) {
	if s.Op == "" {
		s.Op = o.Op
	}
	if s.Plan.Mode == "" {
		// Keep the first branch's plan; the forest/cluster gather overwrites
		// the scatter fields afterwards with the whole query's view.
		s.Plan = o.Plan
	}
	s.NodesRead += o.NodesRead
	s.NodesPruned += o.NodesPruned
	s.EntriesScanned += o.EntriesScanned
	s.EntriesPruned += o.EntriesPruned
	s.EntriesSkipped += o.EntriesSkipped
	s.HeapPushes += o.HeapPushes
	s.ListEvictions += o.ListEvictions
	s.Lemma2Included += o.Lemma2Included
	s.Verified += o.Verified
	s.Discarded += o.Discarded
	s.DeltaCandidates += o.DeltaCandidates
	s.TombstonesSkipped += o.TombstonesSkipped
	s.Abandoned += o.Abandoned
	s.BatchedCandidates += o.BatchedCandidates
	s.GraphHops += o.GraphHops
	s.GraphCandidates += o.GraphCandidates
	s.Results += o.Results
	s.Compdists += o.Compdists
	s.IndexPA += o.IndexPA
	s.DataPA += o.DataPA
	s.IndexCacheHits += o.IndexCacheHits
	s.DataCacheHits += o.DataCacheHits
	if o.PlanTime > s.PlanTime {
		s.PlanTime = o.PlanTime
	}
	if o.VerifyTime > s.VerifyTime {
		s.VerifyTime = o.VerifyTime
	}
	if o.FilterTime > s.FilterTime {
		s.FilterTime = o.FilterTime
	}
	if o.Elapsed > s.Elapsed {
		s.Elapsed = o.Elapsed
	}
}

// stageStart returns a stage start time, or the zero time when per-stage
// timing is off.
func (s *QueryStats) stageStart() time.Time {
	if !s.timed {
		return time.Time{}
	}
	return time.Now()
}

// stageAdd accumulates a stage duration started at st (no-op when timing is
// off).
func (s *QueryStats) stageAdd(d *time.Duration, st time.Time) {
	if s.timed {
		*d += time.Since(st)
	}
}

// ioSnapshot is a point-in-time copy of the shared I/O counters used for
// per-query deltas.
type ioSnapshot struct {
	idxAcc, dataAcc   int64
	idxHits, dataHits int64
	dist              int64
}

// takeIOSnapshot reads the tree's physical-access, cache-hit and distance
// counters (a handful of atomic loads).
func (t *Tree) takeIOSnapshot() ioSnapshot {
	var s ioSnapshot
	s.idxAcc = t.idxCache.Stats().Accesses()
	s.dataAcc = t.dataCache.Stats().Accesses()
	s.idxHits, _ = t.idxCache.Counts()
	s.dataHits, _ = t.dataCache.Counts()
	s.dist = t.dist.Count()
	return s
}

// queryTimer carries one query's begin-state; finish turns it into deltas
// and folds the query into the tree's aggregate metrics. It lives on the
// caller's stack — no allocation on the query path.
type queryTimer struct {
	t      *Tree
	qs     *QueryStats
	before ioSnapshot
	start  time.Time
}

// beginQuery snapshots the shared counters and starts the wall clock.
func (t *Tree) beginQuery(qs *QueryStats) queryTimer {
	return queryTimer{t: t, qs: qs, before: t.takeIOSnapshot(), start: time.Now()}
}

// finish computes the I/O deltas, closes the clocks and records the query in
// the aggregate registry.
func (qt *queryTimer) finish(results int, err error) {
	qs := qt.qs
	qs.Elapsed = time.Since(qt.start)
	qs.Results = results
	after := qt.t.takeIOSnapshot()
	qs.IndexPA = after.idxAcc - qt.before.idxAcc
	qs.DataPA = after.dataAcc - qt.before.dataAcc
	qs.IndexCacheHits = after.idxHits - qt.before.idxHits
	qs.DataCacheHits = after.dataHits - qt.before.dataHits
	if qs.timed {
		if ft := qs.Elapsed - qs.PlanTime - qs.VerifyTime; ft > 0 {
			qs.FilterTime = ft
		}
	}
	qt.t.plr.observe(qs)
	qt.t.metrics.Op(qs.Op).Observe(qs.Compdists, qs.IndexPA, qs.DataPA, int64(results), qs.Elapsed, err != nil)
}

// finishJoin is finish for the two-tree join: I/O deltas come from both
// trees' stores (once for self-joins).
func (qt *queryTimer) finishJoin(to *Tree, beforeTo ioSnapshot, results int, err error) {
	qs := qt.qs
	qs.Elapsed = time.Since(qt.start)
	qs.Results = results
	after := qt.t.takeIOSnapshot()
	qs.IndexPA = after.idxAcc - qt.before.idxAcc
	qs.DataPA = after.dataAcc - qt.before.dataAcc
	qs.IndexCacheHits = after.idxHits - qt.before.idxHits
	qs.DataCacheHits = after.dataHits - qt.before.dataHits
	if to != qt.t {
		afterTo := to.takeIOSnapshot()
		qs.IndexPA += afterTo.idxAcc - beforeTo.idxAcc
		qs.DataPA += afterTo.dataAcc - beforeTo.dataAcc
		qs.IndexCacheHits += afterTo.idxHits - beforeTo.idxHits
		qs.DataCacheHits += afterTo.dataHits - beforeTo.dataHits
	}
	if qs.timed {
		if ft := qs.Elapsed - qs.PlanTime - qs.VerifyTime; ft > 0 {
			qs.FilterTime = ft
		}
	}
	qt.t.metrics.Op(qs.Op).Observe(qs.Compdists, qs.IndexPA, qs.DataPA, int64(results), qs.Elapsed, err != nil)
}

// Metrics returns the tree's aggregate observability registry: per-operation
// query counts, compdists/PA totals and latency histograms, accumulated over
// the tree's lifetime by every search entry point (plain and WithStats).
func (t *Tree) Metrics() *obs.Registry { return &t.metrics }

// PublishExpvar exports the tree's aggregate metrics snapshot under name in
// the process-wide expvar registry (served at /debug/vars by the -debugaddr
// listener of spbtool and spbbench). It reports whether the name was newly
// published; publishing an already-used name is a no-op.
func (t *Tree) PublishExpvar(name string) bool { return t.metrics.Publish(name) }

// SetTracer installs tr on every storage layer of the tree: the B+-tree
// (EvNodeRead), both buffer caches (EvCacheHit/EvCacheMiss/EvPageRead/
// EvPageWrite, labeled index vs data) and the RAF (EvRecordRead). A nil tr
// removes tracing; the default is no tracer, whose entire cost is one nil
// check per site. Install tracers before issuing queries — the hook is not
// synchronized with in-flight operations.
func (t *Tree) SetTracer(tr obs.Tracer) {
	t.tracer = tr
	t.wireTracer()
}

// wireTracer pushes t.tracer down to the current storage substrates; Rebuild
// re-invokes it after swapping them.
func (t *Tree) wireTracer() {
	t.bpt.SetTracer(t.tracer)
	t.idxCache.SetTracer(t.tracer, obs.SrcIndex)
	t.dataCache.SetTracer(t.tracer, obs.SrcData)
	t.raf.SetTracer(t.tracer)
}

// RangeSearchWithStats answers RQ(q, O, r) like RangeQuery and additionally
// returns the query's per-stage QueryStats, including the per-stage wall
// clocks. On a partial-result error the stats cover the work completed.
func (t *Tree) RangeSearchWithStats(q metric.Object, r float64) ([]Result, QueryStats, error) {
	return t.RangeSearchWithStatsCtx(context.Background(), q, r)
}

// KNNWithStats answers kNN(q, k) like KNN and additionally returns the
// query's per-stage QueryStats.
func (t *Tree) KNNWithStats(q metric.Object, k int) ([]Result, QueryStats, error) {
	return t.KNNWithStatsCtx(context.Background(), q, k)
}

// KNNWithinWithStats answers bounded kNN like KNNWithin and additionally
// returns the query's per-stage QueryStats.
func (t *Tree) KNNWithinWithStats(q metric.Object, k int, bound float64) ([]Result, QueryStats, error) {
	return t.KNNWithinWithStatsCtx(context.Background(), q, k, bound)
}

// KNNApproxWithStats answers budgeted approximate kNN like KNNApprox and
// additionally returns the query's per-stage QueryStats. A budget of zero or
// less falls back to the exact search (reported under OpKNN).
func (t *Tree) KNNApproxWithStats(q metric.Object, k, maxVerify int) ([]Result, QueryStats, error) {
	return t.KNNApproxWithStatsCtx(context.Background(), q, k, maxVerify)
}

// JoinWithStats computes SJ(Q, O, ε) like Join and additionally returns the
// join's QueryStats: page accesses aggregate both trees' stores (once for a
// self-join), and the aggregate metrics are recorded on tq.
func JoinWithStats(tq, to *Tree, eps float64) ([]JoinPair, QueryStats, error) {
	return JoinWithStatsCtx(context.Background(), tq, to, eps)
}
