package core

import (
	"bytes"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// FuzzOpenMeta feeds arbitrary bytes to Open: whatever the meta file
// contains — truncated, bit-rotted, adversarial — Open must either succeed
// on a genuinely valid blob or return an error. It must never panic and
// never allocate unboundedly from attacker-controlled length fields.
func FuzzOpenMeta(f *testing.F) {
	// Seed with a valid meta and systematic corruptions of it.
	objs := vectorSet(80, 4, 131)
	tree, err := Build(objs, Options{
		Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteMeta(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{treeMetaVersion})
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	huge := append([]byte(nil), valid...)
	for i := 1; i < 9 && i < len(huge); i++ {
		huge[i] = 0xff // blow up a length field behind the version byte
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Open(bytes.NewReader(data), OpenOptions{
			Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4},
			IndexStore: page.NewMemStore(), DataStore: page.NewMemStore(),
		})
		if err == nil && tr == nil {
			t.Fatal("Open returned nil tree and nil error")
		}
	})
}
