package core

import (
	"context"
	"errors"
	"math"

	"spbtree/internal/graph"
	"spbtree/internal/metric"
	"spbtree/internal/raf"
	"spbtree/internal/recall"
	"spbtree/internal/sfc"
)

// ErrNoGraph is returned by the KNNGraph entry points when the tree has no
// live approximate graph: none was ever built, the last one was invalidated
// by a structural mutation (Insert/Delete/Rebuild/compaction swap), or a
// BuildGraph has not yet been re-run. Callers are expected to fall back to
// the exact KNN path — the forest and HTTP layers do exactly that.
var ErrNoGraph = errors.New("core: no approximate graph built")

// ErrGraphStale is returned by BuildGraph when a structural mutation swapped
// or grew the storage substrate while construction ran off-lock; the built
// graph would reference stale offsets, so it is discarded. Retry under a
// write-quiet window (durable writes do not trigger this — they buffer in
// the delta, which graph queries merge at search time).
var ErrGraphStale = errors.New("core: graph build raced a structural mutation")

// DefaultEf is the beam width used when SearchOptions.Ef is zero.
const DefaultEf = 64

// GraphOptions configures BuildGraph; the zero value selects the defaults of
// the graph package (K=16, ρ=0.5, 12 iterations max, convergence at
// 0.002·K·n updates, 8 entry points).
type GraphOptions struct {
	// K is the number of graph neighbors kept per object.
	K int
	// Rho is the NN-descent sample rate.
	Rho float64
	// MaxIters caps the NN-descent iterations.
	MaxIters int
	// Delta is the NN-descent convergence threshold (fraction of K·n updates
	// per iteration below which construction stops).
	Delta float64
	// Entries is the number of fixed beam-search entry points.
	Entries int
	// Workers bounds the construction's parallel distance evaluators; like
	// query verifiers they are drawn non-blockingly from the process-wide
	// slot pool, so a busy process degrades construction to serial instead
	// of oversubscribing. 0 selects the tree's worker default; 1 is serial.
	// The built graph is identical for every worker count.
	Workers int
	// Seed seeds the construction sampling; 0 means 1.
	Seed int64
}

// SearchOptions tunes one approximate kNN query.
type SearchOptions struct {
	// Ef is the beam width — the size of the sorted candidate/visited set.
	// Larger values raise recall and cost; 0 selects DefaultEf, values
	// below k are raised to k.
	Ef int
	// TargetRecall, when Ef is 0, selects the smallest calibrated beam width
	// whose measured recall reached this target (see CalibrateEf). Without a
	// stored calibration — or when no calibrated width reached the target —
	// the largest calibrated width (or DefaultEf, respectively) applies.
	// Ef > 0 takes precedence.
	TargetRecall float64
}

// graphTier is the attached approximate tier: the graph plus the identity of
// the RAF it was built against, so queries can detect (belt and braces — the
// mutators already invalidate eagerly) that the substrate was swapped.
// offIdx maps RAF offset to graph node index; queries use it to translate
// the query's B+-tree (SFC) position into beam-search seed nodes.
type graphTier struct {
	g      *graph.Graph
	raf    *raf.File
	offIdx map[uint64]int32
	// efCurve is the stored (ef, recall) calibration of CalibrateEf,
	// ascending in ef. It lives on the tier, so it dies with the graph it
	// measured — a rebuilt graph needs a fresh calibration.
	efCurve []EfCalibration
}

// newGraphTier wraps a graph for attachment, deriving the offset→node map.
func newGraphTier(g *graph.Graph, r *raf.File) *graphTier {
	offIdx := make(map[uint64]int32, len(g.Offs))
	for i, off := range g.Offs {
		offIdx[off] = int32(i)
	}
	return &graphTier{g: g, raf: r, offIdx: offIdx}
}

// HasGraph reports whether an approximate graph is live on the tree.
func (t *Tree) HasGraph() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.graphLive() != nil
}

// graphLive returns the attached graph if it matches the current substrate.
// Callers hold t.mu (either mode).
func (t *Tree) graphLive() *graph.Graph {
	if t.graph == nil || t.graph.raf != t.raf {
		return nil
	}
	return t.graph.g
}

// BuildGraph constructs (or replaces) the tree's approximate k-neighbor
// graph over the current live base objects; see BuildGraphCtx.
func (t *Tree) BuildGraph(opts GraphOptions) error {
	return t.BuildGraphCtx(context.Background(), opts)
}

// BuildGraphCtx runs NN-descent over the tree's live base object set and
// attaches the result as the approximate query tier. The object snapshot is
// taken under the read lock (concurrent queries keep flowing, mutators wait
// as they would for any read); construction itself runs off-lock, honoring
// ctx; the finished graph attaches under the write lock only if no
// structural mutation intervened (ErrGraphStale otherwise).
//
// Buffered durable writes are not part of the graph: queries merge the delta
// buffer and tombstone filter at search time, so a graph stays valid — and
// correct — across durable Insert/Delete traffic until compaction folds the
// buffer into a new base (which invalidates the graph; rebuild it after).
// Non-durable Insert/Delete and Rebuild invalidate the graph immediately.
//
// Construction distances are evaluated through the tree's counted metric —
// threshold-aware when the metric has a bounded kernel — so the lifetime
// compdists counter covers construction cost.
func (t *Tree) BuildGraphCtx(ctx context.Context, opts GraphOptions) error {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return ErrClosed
	}
	baseRAF := t.raf
	baseCount := t.raf.Count()
	baseSize := t.raf.Size()
	bounded := t.bounded
	var (
		ids  []uint64
		offs []uint64
		objs []metric.Object
	)
	for c := t.bpt.SeekFirst(); c.Valid(); c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			t.mu.RUnlock()
			return err
		}
		if t.deltaShadowed(obj.ID()) {
			continue
		}
		ids = append(ids, obj.ID())
		offs = append(offs, c.Val())
		objs = append(objs, obj)
	}
	if c := t.bpt.SeekFirst(); c.Err() != nil {
		t.mu.RUnlock()
		return c.Err()
	}
	t.mu.RUnlock()

	gopts := graph.Options{
		K: opts.K, Rho: opts.Rho, MaxIters: opts.MaxIters, Delta: opts.Delta,
		Entries: opts.Entries, Seed: opts.Seed,
	}
	if w := resolveWorkers(opts.Workers); w > 1 {
		if slots := acquireSlots(w); slots > 0 {
			gopts.Workers = slots
			defer releaseSlots(slots)
		}
	}
	dist := func(i, j int, thr float64) (float64, bool) {
		if bounded {
			return t.dist.DistanceAtMost(objs[i], objs[j], thr)
		}
		d := t.dist.Distance(objs[i], objs[j])
		return d, d <= thr
	}
	g, err := graph.Build(ctx, len(objs), dist, gopts)
	if err != nil {
		return err
	}
	g.IDs = ids
	g.Offs = offs
	g.BaseCount = uint64(baseCount)
	g.BaseSize = baseSize

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.raf != baseRAF || t.raf.Count() != baseCount || t.raf.Size() != baseSize {
		return ErrGraphStale
	}
	t.graph = newGraphTier(g, baseRAF)
	return nil
}

// KNNGraph answers approximate kNN(q, k) by greedy beam search over the
// NN-descent graph (build one first with BuildGraph; ErrNoGraph otherwise).
// Results are sorted by (distance, ID) with exact distances, drawn from the
// graph's candidates merged with any buffered durable inserts; objects
// shadowed by tombstones or newer buffered versions never surface. Unlike
// exact KNN the answer may miss true neighbors — SearchOptions.Ef dials the
// recall/latency trade-off.
func (t *Tree) KNNGraph(q metric.Object, k int, opts SearchOptions) ([]Result, error) {
	return t.KNNGraphCtx(context.Background(), q, k, opts)
}

// KNNGraphCtx is KNNGraph honoring ctx: cancellation is checked at every
// graph hop, and on expiry the best candidates found so far are returned
// (sorted) with an error matching ErrCanceled.
func (t *Tree) KNNGraphCtx(ctx context.Context, q metric.Object, k int, opts SearchOptions) ([]Result, error) {
	qs := QueryStats{Op: OpKNNGraph}
	return t.runKNNGraph(ctx, q, k, opts, &qs)
}

// KNNGraphWithStats is KNNGraph plus the query's per-stage QueryStats,
// including the GraphHops/GraphCandidates counters.
func (t *Tree) KNNGraphWithStats(q metric.Object, k int, opts SearchOptions) ([]Result, QueryStats, error) {
	return t.KNNGraphWithStatsCtx(context.Background(), q, k, opts)
}

// KNNGraphWithStatsCtx is KNNGraphCtx plus the query's per-stage QueryStats.
func (t *Tree) KNNGraphWithStatsCtx(ctx context.Context, q metric.Object, k int, opts SearchOptions) ([]Result, QueryStats, error) {
	qs := QueryStats{Op: OpKNNGraph, timed: true}
	res, err := t.runKNNGraph(ctx, q, k, opts, &qs)
	return res, qs, err
}

// runKNNGraph executes one graph query under the tree's read lock.
func (t *Tree) runKNNGraph(ctx context.Context, q metric.Object, k int, opts SearchOptions, qs *QueryStats) ([]Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	qt := t.beginQuery(qs)
	res, err := t.knnGraph(ctx, q, k, opts, qs)
	qt.finish(len(res), err)
	return res, err
}

// graphSeeds translates the query's position on the space-filling curve into
// beam-search seed nodes: map q through the pivots, encode the SFC key, seek
// the B+-tree to it, and return the window of up to ef graph nodes around
// that position (graph node indices are assigned in B+-tree iteration order,
// so a contiguous index window IS an SFC window). This is the substrate
// doing the entry-point work the fixed entries cannot: the SPB-tree clusters
// similar objects on the curve, so the window lands inside the query's
// cluster even when that cluster shares a weakly-connected graph component
// with others and the component's entry sits an inter-cluster plateau away.
// Charges the pivot mapping to Compdists like every exact query. Callers
// hold t.mu.
func (t *Tree) graphSeeds(q metric.Object, ef int, qs *QueryStats) []int32 {
	g := t.graph.g
	n := g.Len()
	if n == 0 {
		return nil
	}
	np := len(t.pivots)
	qvec := make([]float64, np)
	t.phi(q, qvec)
	qs.Compdists += int64(np)
	cells := make(sfc.Point, np)
	t.cells(qvec, cells)
	key := t.curve.Encode(cells)

	// The first indexed record at or after the key anchors the window; a few
	// records may be missing from the graph (delta-shadowed at build time),
	// so probe forward a bounded number of steps. Falling off the end — or
	// never finding a graph node — anchors at the last node.
	center := int32(n - 1)
	c := t.bpt.Seek(key)
	for tries := 0; c.Valid() && tries < 64; tries++ {
		if idx, ok := t.graph.offIdx[c.Val()]; ok {
			center = idx
			break
		}
		c.Next()
	}
	lo := center - int32(ef/2)
	hi := lo + int32(ef)
	if lo < 0 {
		lo = 0
	}
	if hi > int32(n) {
		hi = int32(n)
	}
	seeds := make([]int32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		seeds = append(seeds, v)
	}
	return seeds
}

// knnGraph is the beam-search body: graph candidates (batch-read from the
// RAF and batch-evaluated through the metric's kernels), tombstone-filtered,
// then merged with the buffered durable inserts exactly like the exact
// paths. Counters: every distance evaluation charges Verified+Compdists
// (graph-side ones additionally GraphCandidates, buffered ones
// DeltaCandidates), expansions charge GraphHops, and shadowed base records
// charge TombstonesSkipped.
func (t *Tree) knnGraph(ctx context.Context, q metric.Object, k int, opts SearchOptions, qs *QueryStats) ([]Result, error) {
	g := t.graphLive()
	if g == nil {
		return nil, ErrNoGraph
	}
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	ef := opts.Ef
	if ef <= 0 && opts.TargetRecall > 0 {
		ef = t.efForRecall(opts.TargetRecall)
	}
	if ef <= 0 {
		ef = DefaultEf
	}
	if ef < k {
		ef = k
	}

	st := qs.stageStart()
	seeds := t.graphSeeds(q, ef, qs)
	qs.stageAdd(&qs.PlanTime, st)

	scratch := g.K
	if len(g.Entries) > scratch {
		scratch = len(g.Entries)
	}
	offs := make([]uint64, scratch)
	objs := make([]metric.Object, scratch)
	plens := make([]int, scratch)
	probeObjs := make([]metric.Object, 0, scratch)
	probeIdx := make([]int, 0, scratch)
	pd := make([]float64, scratch)
	pw := make([]bool, scratch)
	byNode := make(map[int32]metric.Object, 2*ef)

	eval := func(nodes []int32, thr float64, d []float64, within []bool) error {
		if err := ctxDone(ctx); err != nil {
			return err
		}
		st := qs.stageStart()
		defer qs.stageAdd(&qs.VerifyTime, st)
		m := len(nodes)
		if m > len(offs) {
			// Symmetrized expansion batches are bounded by a node's in-degree,
			// which a hub can push past the K-sized scratch.
			offs = make([]uint64, m)
			objs = make([]metric.Object, m)
			plens = make([]int, m)
			pd = make([]float64, m)
			pw = make([]bool, m)
		}
		for i, v := range nodes {
			offs[i] = g.Offs[v]
		}
		if idx, err := t.raf.ReadBatch(offs[:m], objs[:m], plens[:m]); idx >= 0 || err != nil {
			// Coalesced read failed: per-record reads surface the error.
			for i, v := range nodes {
				o, err := t.raf.Read(g.Offs[v])
				if err != nil {
					return err
				}
				objs[i] = o
			}
		} else {
			for i := 0; i < m; i++ {
				t.raf.EmitRecordRead(offs[i], plens[i])
			}
		}
		probeObjs, probeIdx = probeObjs[:0], probeIdx[:0]
		for i := range nodes {
			if t.deltaShadowed(objs[i].ID()) {
				// Shadowed by a tombstone or a newer buffered version: the
				// buffered side of the merge owns this ID.
				qs.TombstonesSkipped++
				d[i], within[i] = math.Inf(1), false
				continue
			}
			probeIdx = append(probeIdx, i)
			probeObjs = append(probeObjs, objs[i])
		}
		if len(probeObjs) > 0 {
			t.verifyBatch(q, probeObjs, thr, pd[:len(probeObjs)], pw[:len(probeObjs)])
			qs.Verified += int64(len(probeObjs))
			qs.Compdists += int64(len(probeObjs))
			qs.GraphCandidates += int64(len(probeObjs))
			for j, i := range probeIdx {
				d[i], within[i] = pd[j], pw[j]
				if within[i] {
					byNode[nodes[i]] = objs[i]
				} else if t.bounded {
					qs.Abandoned++
				}
			}
		}
		return nil
	}

	cands, sstats, serr := g.Search(ctx, eval, ef, seeds)
	qs.GraphHops += sstats.Hops
	res := newKNNResults(k, math.Inf(1))
	for _, c := range cands {
		if o := byNode[c.Node]; o != nil {
			res.offer(Result{Object: o, Dist: c.Dist, Exact: true})
		}
	}
	if serr == nil {
		// Merge the buffered durable inserts brute-force against the running
		// bound — the delta is small by design (compaction bounds it).
		for _, e := range t.deltaEntriesSorted() {
			if err := ctxDone(ctx); err != nil {
				serr = err
				break
			}
			st := qs.stageStart()
			d, within := t.verifyDist(q, e.obj, res.bound())
			qs.stageAdd(&qs.VerifyTime, st)
			qs.DeltaCandidates++
			qs.Verified++
			qs.Compdists++
			if within {
				res.offer(Result{Object: e.obj, Dist: d, Exact: true})
			} else if t.bounded {
				qs.Abandoned++
			}
		}
	}
	out := res.sorted()
	qs.Discarded = qs.Verified - int64(len(out))
	if serr != nil && ctx.Err() != nil {
		// Normalize any cancellation-caused error to the typed contract.
		serr = canceledErr(ctx)
	}
	return out, serr
}

// ---------------------------------------------------------------------------
// ef auto-tuning from a recall target
// ---------------------------------------------------------------------------

// EfCalibration is one measured point of the beam-width/recall curve.
type EfCalibration struct {
	// Ef is the beam width measured.
	Ef int
	// Recall is the mean recall@k observed at that width over the
	// calibration sample.
	Recall float64
}

// calibrateK is the recall@k depth CalibrateEf measures at — the standard
// k=10 of the repo's recall experiments.
const calibrateK = 10

// calibrateEfWidths is the beam-width sweep CalibrateEf measures.
var calibrateEfWidths = []int{16, 24, 32, 48, 64, 96, 128, 192, 256}

// EfCurve returns the stored (ef, recall) calibration for the live graph, or
// nil when none exists (no CalibrateEf run, or the graph was rebuilt since).
func (t *Tree) EfCurve() []EfCalibration {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.graphLive() == nil {
		return nil
	}
	return append([]EfCalibration(nil), t.graph.efCurve...)
}

// efForRecall resolves a recall target against the stored curve: the
// smallest calibrated width whose running-max recall reached the target, or
// the largest calibrated width when none did (recall is capped by graph
// connectivity — the calibration's honest best effort). 0 when no curve is
// stored. Callers hold t.mu.
func (t *Tree) efForRecall(target float64) int {
	if t.graphLive() == nil || len(t.graph.efCurve) == 0 {
		return 0
	}
	curve := t.graph.efCurve
	best := 0.0
	for _, p := range curve {
		if p.Recall > best {
			best = p.Recall
		}
		if best >= target {
			return p.Ef
		}
	}
	return curve[len(curve)-1].Ef
}

// CalibrateEf measures the live graph's recall@10 across a sweep of beam
// widths on a deterministic sample of indexed objects, stores the resulting
// (ef, recall) curve on the graph tier, and returns the smallest width whose
// recall reached target (or the largest measured width when the target is
// out of reach — raise GraphOptions.K or rebuild before expecting more).
// Afterwards SearchOptions{TargetRecall: r} resolves beam widths from the
// stored curve.
//
// sample caps the number of calibration queries (0 selects 64; the sample is
// an even stride over the index, so it covers the curve). Calibration runs
// real exact and graph queries: the tree's lifetime compdists counter and
// aggregate metrics advance accordingly. The curve dies with the graph —
// rebuilding invalidates it, so recalibrate after BuildGraph.
func (t *Tree) CalibrateEf(target float64, sample int) (int, error) {
	return t.CalibrateEfCtx(context.Background(), target, sample)
}

// CalibrateEfCtx is CalibrateEf honoring ctx; cancellation aborts between
// queries with no curve stored.
func (t *Tree) CalibrateEfCtx(ctx context.Context, target float64, sample int) (int, error) {
	if sample <= 0 {
		sample = 64
	}
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return 0, ErrClosed
	}
	tier := t.graph
	if t.graphLive() == nil {
		t.mu.RUnlock()
		return 0, ErrNoGraph
	}
	// Deterministic query sample: an even stride over the B+-tree (= SFC)
	// order, skipping delta-shadowed records.
	var queries []metric.Object
	if n := t.count; n > 0 {
		stride := n / sample
		if stride < 1 {
			stride = 1
		}
		i := 0
		for c := t.bpt.SeekFirst(); c.Valid() && len(queries) < sample; c.Next() {
			if i%stride == 0 {
				obj, err := t.raf.Read(c.Val())
				if err != nil {
					t.mu.RUnlock()
					return 0, err
				}
				if !t.deltaShadowed(obj.ID()) {
					queries = append(queries, obj)
				}
			}
			i++
		}
	}
	t.mu.RUnlock()
	if len(queries) == 0 {
		return 0, ErrNoGraph
	}

	k := calibrateK
	// Exact baselines through the public entry point (it takes its own read
	// lock), so calibration composes with live traffic.
	exactIDs := make([][]uint64, len(queries))
	for i, q := range queries {
		res, err := t.KNNCtx(ctx, q, k)
		if err != nil {
			return 0, err
		}
		ids := make([]uint64, len(res))
		for j, x := range res {
			ids[j] = x.Object.ID()
		}
		exactIDs[i] = ids
	}

	curve := make([]EfCalibration, 0, len(calibrateEfWidths))
	for _, ef := range calibrateEfWidths {
		var sum float64
		for i, q := range queries {
			res, err := t.KNNGraphCtx(ctx, q, k, SearchOptions{Ef: ef})
			if err != nil {
				return 0, err
			}
			got := make([]uint64, len(res))
			for j, x := range res {
				got[j] = x.Object.ID()
			}
			sum += recall.AtK(exactIDs[i], got, k)
		}
		curve = append(curve, EfCalibration{Ef: ef, Recall: sum / float64(len(queries))})
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	if t.graph != tier || t.graphLive() == nil {
		// The graph was rebuilt or invalidated mid-calibration; the curve
		// measured a dead graph.
		return 0, ErrGraphStale
	}
	t.graph.efCurve = curve
	best := 0.0
	for _, p := range curve {
		if p.Recall > best {
			best = p.Recall
		}
		if best >= target {
			return p.Ef, nil
		}
	}
	return curve[len(curve)-1].Ef, nil
}
