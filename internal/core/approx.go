package core

import (
	"container/heap"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// KNNApprox answers kNN(q, k) approximately: the best-first traversal of
// Algorithm 2 runs unchanged but stops after verifying at most maxVerify
// objects. Because candidates are visited in ascending mapped-space MIND
// order — the lower bound whose tightness is the pivot set's precision
// (Definition 1) — the first verified objects are exactly the most promising
// ones, so recall degrades gracefully as the budget shrinks. A budget of
// zero or less falls back to the exact search.
//
// This is the approximate-search mode metric indexes such as the M-Index
// expose, and a natural extension of the paper's framework: the same
// structure serves exact and budgeted queries.
func (t *Tree) KNNApprox(q metric.Object, k, maxVerify int) ([]Result, error) {
	if maxVerify <= 0 {
		return t.KNN(q, k)
	}
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	n := len(t.pivots)
	qvec := make([]float64, n)
	t.phi(q, qvec)

	res := &knnResults{k: k}
	pq := &mindHeap{}
	root, ok := t.bpt.Root()
	if !ok {
		return nil, nil
	}
	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)

	t.curve.Decode(root.BoxLo, boxLo)
	t.curve.Decode(root.BoxHi, boxHi)
	heap.Push(pq, mindItem{mind: t.mindToBox(qvec, boxLo, boxHi), page: root.Page, isNode: true})

	verified := 0
	for pq.Len() > 0 && verified < maxVerify {
		item := heap.Pop(pq).(mindItem)
		if item.mind >= res.bound() {
			break
		}
		if !item.isNode {
			if err := t.verifyKNN(q, res, item.val); err != nil {
				return nil, err
			}
			verified++
			continue
		}
		node, err := t.bpt.ReadNode(item.page)
		if err != nil {
			return nil, err
		}
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if mind := t.mindToBox(qvec, boxLo, boxHi); mind < res.bound() {
					heap.Push(pq, mindItem{mind: mind, page: page.ID(c.Page), isNode: true})
				}
			}
			continue
		}
		for i := range node.Keys {
			t.curve.Decode(node.Keys[i], cell)
			if mind := t.mindToCell(qvec, cell); mind < res.bound() {
				heap.Push(pq, mindItem{mind: mind, val: node.Vals[i]})
			}
		}
	}
	out := append([]Result(nil), res.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID() < out[j].Object.ID()
	})
	return out, nil
}
