package core

import (
	"context"
	"math"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// KNNApprox answers kNN(q, k) approximately: the best-first traversal of
// Algorithm 2 runs unchanged but stops after verifying at most maxVerify
// objects. Because candidates are visited in ascending mapped-space MIND
// order — the lower bound whose tightness is the pivot set's precision
// (Definition 1) — the first verified objects are exactly the most promising
// ones, so recall degrades gracefully as the budget shrinks. A budget of
// zero or less falls back to the exact search.
//
// This is the approximate-search mode metric indexes such as the M-Index
// expose, and a natural extension of the paper's framework: the same
// structure serves exact and budgeted queries.
//
// Use KNNApproxWithStats to additionally observe the query's per-stage
// QueryStats, and KNNApproxCtx for deadline- and cancellation-aware
// execution.
func (t *Tree) KNNApprox(q metric.Object, k, maxVerify int) ([]Result, error) {
	return t.KNNApproxCtx(context.Background(), q, k, maxVerify)
}

// knnApprox is the budgeted best-first traversal, accumulating per-stage
// counts into qs. ctx is checked at every heap pop and every verification; on
// cancellation (or any storage error) the candidates verified so far are
// returned with the error, mirroring knn's partial-result contract.
func (t *Tree) knnApprox(ctx context.Context, q metric.Object, k, maxVerify int, qs *QueryStats) ([]Result, error) {
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	n := len(t.pivots)
	st := qs.stageStart()
	qvec := make([]float64, n)
	t.phi(q, qvec)
	qs.Compdists += int64(n)
	qs.stageAdd(&qs.PlanTime, st)

	root, rootOK := t.bpt.Root()
	if !rootOK && !t.deltaActive() {
		return nil, nil
	}
	if slots := t.workersFor(); slots > 0 {
		// The ordered-commit engine enforces the budget at commit time, so
		// the verified set is exactly the serial prefix (exec.go).
		return t.knnParallel(ctx, q, qvec, k, math.Inf(1), qs, slots, int64(maxVerify))
	}

	res := newKNNResults(k, math.Inf(1))
	pq := &mindHeap{}
	boxLo := make(sfc.Point, n)
	boxHi := make(sfc.Point, n)
	cell := make(sfc.Point, n)

	if rootOK {
		t.curve.Decode(root.BoxLo, boxLo)
		t.curve.Decode(root.BoxHi, boxHi)
		pq.push(mindItem{mind: t.mindToBox(qvec, boxLo, boxHi), page: root.Page, isNode: true})
		qs.HeapPushes++
	}
	if t.deltaActive() {
		t.seedDeltaKNN(qvec, pq, cell, qs)
	}

	verified := 0
	for pq.Len() > 0 && verified < maxVerify {
		if err := ctxDone(ctx); err != nil {
			return res.sorted(), err
		}
		item := pq.pop()
		if item.mind > res.bound() {
			break
		}
		if !item.isNode {
			// A tombstone-shadowed base record verifies nothing and spends no
			// budget; the serial and parallel budgeted searches agree on that.
			counted, err := t.verifyKNN(ctx, q, res, item, qs)
			if err != nil {
				return res.sorted(), err
			}
			if counted {
				verified++
			}
			continue
		}
		node, err := t.bpt.ReadNode(item.page)
		if err != nil {
			return res.sorted(), err
		}
		qs.NodesRead++
		if !node.Leaf {
			for _, c := range node.Children {
				t.curve.Decode(c.BoxLo, boxLo)
				t.curve.Decode(c.BoxHi, boxHi)
				if mind := t.mindToBox(qvec, boxLo, boxHi); mind <= res.bound() {
					pq.push(mindItem{mind: mind, page: page.ID(c.Page), isNode: true})
					qs.HeapPushes++
				} else {
					qs.NodesPruned++
				}
			}
			continue
		}
		for i := range node.Keys {
			qs.EntriesScanned++
			t.curve.Decode(node.Keys[i], cell)
			if mind := t.mindToCell(qvec, cell); mind <= res.bound() {
				pq.push(mindItem{mind: mind, val: node.Vals[i]})
				qs.HeapPushes++
			} else {
				qs.EntriesPruned++
			}
		}
	}
	out := res.sorted()
	qs.Discarded = qs.Verified - int64(len(out))
	return out, nil
}
