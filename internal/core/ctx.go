package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"spbtree/internal/metric"
)

// ErrCanceled matches (errors.Is) every query abandoned because its context
// was canceled or its deadline expired. The answers verified before the
// cancellation are returned alongside the error — the same
// partial-results-plus-typed-error contract the durability layer uses for
// corrupt pages — so callers can distinguish "incomplete because interrupted"
// from "incomplete because broken". The context's own cause (e.g.
// context.DeadlineExceeded) is wrapped too and remains errors.Is-matchable.
var ErrCanceled = errors.New("core: query canceled")

// canceledErr wraps ctx's cancellation cause in ErrCanceled.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// ctxDone reports a pending cancellation as a typed error, or nil. It is the
// cancellation check compiled into the query loops: for the default
// context.Background() of the non-Ctx entry points it is a single nil
// comparison, so uncancellable queries pay nothing measurable.
func ctxDone(ctx context.Context) error {
	if ctx.Err() != nil {
		return canceledErr(ctx)
	}
	return nil
}

// treeIDs hands out the process-unique Tree.id values used to order lock
// acquisition for two-tree joins.
var treeIDs atomic.Uint64

// rlockPair read-locks one or two trees in id order (deadlock-free against
// concurrent joins and Rebuilds touching the same pair) and returns the
// matching unlock.
func rlockPair(a, b *Tree) func() {
	if a == b {
		a.mu.RLock()
		return a.mu.RUnlock
	}
	if a.id > b.id {
		a, b = b, a
	}
	a.mu.RLock()
	b.mu.RLock()
	return func() { b.mu.RUnlock(); a.mu.RUnlock() }
}

// RangeSearchCtx answers RQ(q, O, r) like RangeQuery, honoring ctx:
// cancellation is checked at every node visit and every object verification,
// so an expired deadline stops page I/O and distance computations within one
// entry's work. On cancellation the answers verified so far are returned
// (sorted) with an error matching ErrCanceled.
func (t *Tree) RangeSearchCtx(ctx context.Context, q metric.Object, r float64) ([]Result, error) {
	qs := QueryStats{Op: OpRange}
	return t.runRange(ctx, q, r, &qs)
}

// RangeSearchWithStatsCtx is RangeSearchCtx plus the query's per-stage
// QueryStats (covering the work completed before any cancellation).
func (t *Tree) RangeSearchWithStatsCtx(ctx context.Context, q metric.Object, r float64) ([]Result, QueryStats, error) {
	qs := QueryStats{Op: OpRange, timed: true}
	res, err := t.runRange(ctx, q, r, &qs)
	return res, qs, err
}

// runRange executes one range query under the tree's read lock.
func (t *Tree) runRange(ctx context.Context, q metric.Object, r float64, qs *QueryStats) ([]Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	qt := t.beginQuery(qs)
	res, err := t.rangeQuery(ctx, q, r, qs)
	qt.finish(len(res), err)
	return res, err
}

// KNNCtx answers kNN(q, k) like KNN, honoring ctx with the same cancellation
// granularity as RangeSearchCtx. On cancellation the best candidates verified
// so far are returned (sorted by distance) with an error matching
// ErrCanceled — a usable approximate answer, not garbage.
func (t *Tree) KNNCtx(ctx context.Context, q metric.Object, k int) ([]Result, error) {
	qs := QueryStats{Op: OpKNN}
	return t.runKNN(ctx, q, k, &qs)
}

// KNNWithStatsCtx is KNNCtx plus the query's per-stage QueryStats.
func (t *Tree) KNNWithStatsCtx(ctx context.Context, q metric.Object, k int) ([]Result, QueryStats, error) {
	qs := QueryStats{Op: OpKNN, timed: true}
	res, err := t.runKNN(ctx, q, k, &qs)
	return res, qs, err
}

// runKNN executes one kNN query under the tree's read lock.
func (t *Tree) runKNN(ctx context.Context, q metric.Object, k int, qs *QueryStats) ([]Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	qt := t.beginQuery(qs)
	res, err := t.knn(ctx, q, k, math.Inf(1), qs)
	qt.finish(len(res), err)
	return res, err
}

// KNNWithin answers kNN(q, k) restricted to objects within the given distance
// bound: the canonical top-k of {x : d(q, x) ≤ bound}, possibly fewer than k
// results. It is exactly KNN over the shard plus k phantom results at
// (bound, ∞), so a caller holding a k-th-distance bound from elsewhere — the
// forest's staged scatter visits its first shard to obtain one — prunes with
// it from the first heap pop instead of rediscovering it. bound = +Inf is
// plain KNN.
func (t *Tree) KNNWithin(q metric.Object, k int, bound float64) ([]Result, error) {
	return t.KNNWithinCtx(context.Background(), q, k, bound)
}

// KNNWithinCtx is KNNWithin honoring ctx, with KNNCtx's partial-result
// cancellation contract.
func (t *Tree) KNNWithinCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]Result, error) {
	qs := QueryStats{Op: OpKNN}
	return t.runKNNWithin(ctx, q, k, bound, &qs)
}

// KNNWithinWithStatsCtx is KNNWithinCtx plus the query's per-stage QueryStats.
func (t *Tree) KNNWithinWithStatsCtx(ctx context.Context, q metric.Object, k int, bound float64) ([]Result, QueryStats, error) {
	qs := QueryStats{Op: OpKNN, timed: true}
	res, err := t.runKNNWithin(ctx, q, k, bound, &qs)
	return res, qs, err
}

// runKNNWithin executes one bounded kNN query under the tree's read lock.
func (t *Tree) runKNNWithin(ctx context.Context, q metric.Object, k int, bound float64, qs *QueryStats) ([]Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	qt := t.beginQuery(qs)
	res, err := t.knn(ctx, q, k, bound, qs)
	qt.finish(len(res), err)
	return res, err
}

// KNNApproxCtx answers budgeted approximate kNN like KNNApprox, honoring ctx.
// A budget of zero or less falls back to the exact KNNCtx.
func (t *Tree) KNNApproxCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]Result, error) {
	if maxVerify <= 0 {
		return t.KNNCtx(ctx, q, k)
	}
	qs := QueryStats{Op: OpKNNApprox}
	return t.runKNNApprox(ctx, q, k, maxVerify, &qs)
}

// KNNApproxWithStatsCtx is KNNApproxCtx plus the query's per-stage
// QueryStats. A budget of zero or less falls back to KNNWithStatsCtx.
func (t *Tree) KNNApproxWithStatsCtx(ctx context.Context, q metric.Object, k, maxVerify int) ([]Result, QueryStats, error) {
	if maxVerify <= 0 {
		return t.KNNWithStatsCtx(ctx, q, k)
	}
	qs := QueryStats{Op: OpKNNApprox, timed: true}
	res, err := t.runKNNApprox(ctx, q, k, maxVerify, &qs)
	return res, qs, err
}

// runKNNApprox executes one budgeted kNN query under the tree's read lock.
func (t *Tree) runKNNApprox(ctx context.Context, q metric.Object, k, maxVerify int, qs *QueryStats) ([]Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	qt := t.beginQuery(qs)
	res, err := t.knnApprox(ctx, q, k, maxVerify, qs)
	qt.finish(len(res), err)
	return res, err
}

// JoinCtx computes SJ(Q, O, ε) like Join, honoring ctx: cancellation is
// checked at every merge step and before every distance computation, and the
// pairs verified so far are returned with an error matching ErrCanceled.
func JoinCtx(ctx context.Context, tq, to *Tree, eps float64) ([]JoinPair, error) {
	qs := QueryStats{Op: OpJoin}
	return runJoin(ctx, tq, to, eps, &qs)
}

// JoinWithStatsCtx is JoinCtx plus the join's QueryStats (page accesses
// aggregate both trees' stores, once for a self-join).
func JoinWithStatsCtx(ctx context.Context, tq, to *Tree, eps float64) ([]JoinPair, QueryStats, error) {
	qs := QueryStats{Op: OpJoin, timed: true}
	pairs, err := runJoin(ctx, tq, to, eps, &qs)
	return pairs, qs, err
}

// runJoin executes one join under both trees' read locks (id-ordered).
func runJoin(ctx context.Context, tq, to *Tree, eps float64, qs *QueryStats) ([]JoinPair, error) {
	unlock := rlockPair(tq, to)
	defer unlock()
	if tq.closed || to.closed {
		return nil, ErrClosed
	}
	var beforeTo ioSnapshot
	if to != tq {
		beforeTo = to.takeIOSnapshot()
	}
	qt := tq.beginQuery(qs)
	pairs, err := joinImpl(ctx, tq, to, eps, qs)
	qt.finishJoin(to, beforeTo, len(pairs), err)
	return pairs, err
}
