package core

import (
	"container/heap"
	"math"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// NearestIter starts an incremental nearest-neighbor scan from q in the
// style of Hjaltason and Samet: Next returns indexed objects in ascending
// distance order, lazily, so callers can consume exactly as many neighbors
// as they need (distance-ordered joins, result pagination) without fixing k
// in advance.
//
// The iterator interleaves two priority queues: the Algorithm-2 MIND heap
// over tree entries and a result heap of already-verified objects. An object
// is emitted once its exact distance is no larger than the best unexplored
// lower bound, which guarantees global ordering.
func (t *Tree) NearestIter(q metric.Object) *NearestIter {
	return t.NearestIterWithin(q, math.Inf(1))
}

// NearestIterWithin is NearestIter restricted to objects within distance
// limit of q: the same ascending-distance scan, but entries whose mapped-
// space lower bound exceeds the limit are never explored (the MIND heap pops
// in nondecreasing order, so the scan stops outright), and with a
// threshold-aware metric (DESIGN.md §10) each verification runs against the
// limit so out-of-range objects abandon early. Objects at exactly the limit
// are emitted. A +Inf limit is exactly NearestIter.
//
// On a durable tree the iterator pins the tree by holding its read lock from
// creation until it is exhausted, fails, or is Closed — buffered inserts join
// the scan and superseded base records are skipped, so the emitted sequence
// matches a tree rebuilt over the live set. Consequently a goroutine may not
// mutate the tree (Insert/Delete/CompactNow/Close) while it still holds an
// unfinished durable iterator; call Close first. Iterators over non-durable
// trees are lock-free, as before.
func (t *Tree) NearestIterWithin(q metric.Object, limit float64) *NearestIter {
	n := len(t.pivots)
	it := &NearestIter{t: t, qvec: make([]float64, n), limit: limit}
	it.q = q
	it.boxLo = make(sfc.Point, n)
	it.boxHi = make(sfc.Point, n)
	it.cell = make(sfc.Point, n)
	if t.dur != nil {
		t.mu.RLock()
		it.locked = true
		if t.closed {
			it.release()
			it.err = ErrClosed
			return it
		}
	}
	t.phi(q, it.qvec)
	if root, ok := t.bpt.Root(); ok {
		t.curve.Decode(root.BoxLo, it.boxLo)
		t.curve.Decode(root.BoxHi, it.boxHi)
		it.pq.push(mindItem{mind: t.mindToBox(it.qvec, it.boxLo, it.boxHi), page: root.Page, isNode: true})
	}
	for _, e := range t.deltaEntriesSorted() {
		t.curve.Decode(e.key, it.cell)
		it.pq.push(mindItem{mind: t.mindToCell(it.qvec, it.cell), obj: e.obj})
	}
	return it
}

// NearestIter yields objects in ascending distance order; see
// Tree.NearestIter.
type NearestIter struct {
	t     *Tree
	q     metric.Object
	qvec  []float64
	limit float64 // emit only objects with d ≤ limit; +Inf = unbounded

	pq       mindHeap   // unexplored entries by lower bound
	verified resultHeap // computed but not yet emitted results

	// pending holds a batch-verified run of entries not yet applied to the
	// result heap; entries apply one per loop turn, in pop order, so the
	// emission interleaving matches the unbatched scan exactly (their minds
	// still count as frontier lower bounds until applied).
	pending []iterPending
	pendIdx int
	noBatch bool      // a coalesced read failed; stay on the scalar path
	kb      *knnBatch // batch scratch, allocated on first use

	boxLo, boxHi, cell sfc.Point
	locked             bool // holds t.mu.RLock (durable trees only)
	err                error
}

// iterPending is one batch-verified entry awaiting application: its frontier
// lower bound, and — unless it was a record superseded by the write buffer
// (obj nil, applied as a no-op) — the object with its verdict against the
// iterator's limit.
type iterPending struct {
	mind   float64
	obj    metric.Object
	d      float64
	within bool
}

// frontier returns the best unexplored lower bound — the next pending entry's
// MIND if a batch is in flight, the heap minimum otherwise — and whether any
// frontier remains.
func (it *NearestIter) frontier() (float64, bool) {
	if it.pendIdx < len(it.pending) {
		return it.pending[it.pendIdx].mind, true
	}
	if it.pq.Len() > 0 {
		return it.pq.peekMind(), true
	}
	return 0, false
}

// release drops the pinned read lock, once.
func (it *NearestIter) release() {
	if it.locked {
		it.locked = false
		it.t.mu.RUnlock()
	}
}

// Close releases the tree read lock a durable-tree iterator holds, ending
// the scan. It is idempotent, safe after exhaustion, and a no-op for
// iterators over non-durable trees. Abandoning a durable iterator without
// closing it blocks mutators and Close on the tree indefinitely.
func (it *NearestIter) Close() { it.release() }

// Next returns the next nearest object; ok is false when the index is
// exhausted or an error occurred (check Err). Exhaustion and errors release
// a durable iterator's lock automatically.
func (it *NearestIter) Next() (res Result, ok bool) {
	if it.err != nil {
		return Result{}, false
	}
	for {
		// Emit a verified result once nothing unexplored can beat it.
		if front, ok := it.frontier(); len(it.verified) > 0 && (!ok || it.verified[0].Dist <= front) {
			return heap.Pop(&it.verified).(Result), true
		}
		// Apply one batch-verified entry per turn, keeping the emission
		// checks between applications.
		if it.pendIdx < len(it.pending) {
			p := it.pending[it.pendIdx]
			it.pendIdx++
			if p.obj != nil && p.within {
				heap.Push(&it.verified, Result{Object: p.obj, Dist: p.d, Exact: true})
			}
			continue
		}
		if it.pq.Len() == 0 {
			if len(it.verified) == 0 {
				it.release()
			}
			return Result{}, false
		}
		item := it.pq.pop()
		if item.mind > it.limit {
			// MIND values pop in nondecreasing order (children's bounds are
			// never below their parent's), so nothing unexplored can hold an
			// object within the limit: drain the heap and emit what remains.
			it.pq.items = it.pq.items[:0]
			continue
		}
		if !item.isNode {
			if it.t.batch && !it.noBatch && it.pq.Len() > 0 && !it.pq.peekIsNode() && it.pq.peekMind() <= it.limit {
				// A run of in-limit entries sits atop the heap: verify the
				// block through the batch kernel (DESIGN.md §13) and stage it
				// in pending. Verification is against the fixed limit — never
				// a moving bound — so batching changes nothing but the kernel.
				if it.batchRun(item) {
					continue
				}
				// A coalesced read failed: the run is back on the heap and the
				// scalar path below takes over (permanently, via noBatch).
			}
			obj := item.obj
			if obj == nil {
				var err error
				obj, err = it.t.raf.Read(item.val)
				if err != nil {
					it.err = err
					it.release()
					return Result{}, false
				}
				if it.t.deltaShadowed(obj.ID()) {
					continue // superseded by the write buffer
				}
			}
			d, within := it.t.verifyDist(it.q, obj, it.limit)
			if within {
				heap.Push(&it.verified, Result{Object: obj, Dist: d, Exact: true})
			}
			continue
		}
		node, err := it.t.bpt.ReadNode(item.page)
		if err != nil {
			it.err = err
			it.release()
			return Result{}, false
		}
		if !node.Leaf {
			for _, c := range node.Children {
				it.t.curve.Decode(c.BoxLo, it.boxLo)
				it.t.curve.Decode(c.BoxHi, it.boxHi)
				it.pq.push(mindItem{mind: it.t.mindToBox(it.qvec, it.boxLo, it.boxHi), page: c.Page, isNode: true})
			}
			continue
		}
		for i := range node.Keys {
			it.t.curve.Decode(node.Keys[i], it.cell)
			it.pq.push(mindItem{mind: it.t.mindToCell(it.qvec, it.cell), val: node.Vals[i]})
		}
	}
}

// batchRun gathers first plus the consecutive non-node, in-limit entries atop
// the heap (up to knnIncrementalBlock), resolves them with one coalesced RAF
// read, and batch-verifies the survivors against the iterator's fixed limit
// into pending — every (d, within) pair bit-identical to the scalar
// verifyDist, records superseded by the write buffer staged as no-ops. It
// reports false when the coalesced read failed: the gathered extras are
// pushed back (the heap restores pop order), noBatch pins the scalar path,
// and the caller re-resolves first scalar-wise, surfacing any real read error
// at the same position the unbatched scan would.
func (it *NearestIter) batchRun(first mindItem) bool {
	if it.kb == nil {
		it.kb = &knnBatch{}
	}
	kb := it.kb
	kb.items = append(kb.items[:0], first)
	for len(kb.items) < knnIncrementalBlock && it.pq.Len() > 0 && !it.pq.peekIsNode() && it.pq.peekMind() <= it.limit {
		kb.items = append(kb.items, it.pq.pop())
	}
	n := len(kb.items)
	kb.grow(n)
	m := 0
	for _, x := range kb.items {
		if x.obj == nil {
			kb.offsets[m] = x.val
			m++
		}
	}
	if m > 0 {
		if idx, err := it.t.raf.ReadBatch(kb.offsets[:m], kb.readObjs[:m], kb.plens[:m]); idx >= 0 || err != nil {
			for _, x := range kb.items[1:] {
				it.pq.push(x)
			}
			it.noBatch = true
			return false
		}
		for i := 0; i < m; i++ {
			it.t.raf.EmitRecordRead(kb.offsets[i], kb.plens[i])
		}
	}
	it.pending = it.pending[:0]
	it.pendIdx = 0
	j := 0
	for _, x := range kb.items {
		p := iterPending{mind: x.mind, obj: x.obj}
		if p.obj == nil {
			o := kb.readObjs[j]
			j++
			if !it.t.deltaShadowed(o.ID()) {
				p.obj = o
			}
		}
		it.pending = append(it.pending, p)
	}
	probeIdx, probeObjs := kb.probeIdx[:0], kb.probeObjs[:0]
	for i := range it.pending {
		if it.pending[i].obj != nil {
			probeIdx = append(probeIdx, i)
			probeObjs = append(probeObjs, it.pending[i].obj)
		}
	}
	if len(probeObjs) > 0 {
		p := len(probeObjs)
		it.t.verifyBatch(it.q, probeObjs, it.limit, kb.pd[:p], kb.pw[:p])
		for jj, i := range probeIdx {
			it.pending[i].d = kb.pd[jj]
			it.pending[i].within = kb.pw[jj]
		}
	}
	return true
}

// Err returns the first error the iterator encountered.
func (it *NearestIter) Err() error { return it.err }

// resultHeap is a min-heap of verified results by distance (ties by id for
// determinism).
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist < h[j].Dist
	}
	return h[i].Object.ID() < h[j].Object.ID()
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
