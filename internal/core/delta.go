package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"spbtree/internal/metric"
)

// deltaState is the in-memory write buffer of a durable tree (DESIGN.md
// §11): recent inserts and delete tombstones keyed by object ID, absorbed
// without touching the base tree's substrates. Reads merge it with the base
// so query results are identical to a tree freshly rebuilt over the live
// object set; compaction folds it into a new base and prunes it.
//
// Both maps are guarded by Tree.mu: mutators update them under the write
// lock, queries read them under the read lock they already hold.
type deltaState struct {
	// entries holds buffered inserts. An entry shadows any base object with
	// the same ID (inserts are upserts by ID).
	entries map[uint64]deltaEntry
	// tombs holds delete tombstones: ID → LSN of the delete. A tombstone
	// shadows base objects and wins over older buffered inserts.
	tombs map[uint64]uint64
}

// deltaEntry is one buffered insert.
type deltaEntry struct {
	// obj is the live object.
	obj metric.Object
	// key is its SFC key, computed once at append time.
	key uint64
	// lsn is the WAL position that made it durable; last-writer-wins ties
	// between racing mutators are resolved by it so in-memory apply order
	// always matches WAL replay order.
	lsn uint64
}

// newDeltaState returns an empty write buffer.
func newDeltaState() *deltaState {
	return &deltaState{entries: make(map[uint64]deltaEntry), tombs: make(map[uint64]uint64)}
}

// deltaActive reports whether the write buffer holds anything a read must
// merge. Callers hold t.mu (either mode).
func (t *Tree) deltaActive() bool {
	return t.wbuf != nil && (len(t.wbuf.entries) > 0 || len(t.wbuf.tombs) > 0)
}

// deltaShadowed reports whether the write buffer supersedes base records
// with this ID — by a buffered insert (newer version) or a tombstone. Base
// readers must skip shadowed records or they would double-report or
// resurrect. Callers hold t.mu (either mode).
func (t *Tree) deltaShadowed(id uint64) bool {
	if t.wbuf == nil {
		return false
	}
	if _, ok := t.wbuf.entries[id]; ok {
		return true
	}
	_, ok := t.wbuf.tombs[id]
	return ok
}

// deltaSize is the buffered mutation count that compaction thresholds
// compare against. Callers hold t.mu (either mode).
func (t *Tree) deltaSize() int {
	if t.wbuf == nil {
		return 0
	}
	return len(t.wbuf.entries) + len(t.wbuf.tombs)
}

// deltaEntriesSorted snapshots the buffered inserts in ascending ID order —
// the deterministic iteration order every delta-merging read uses. Callers
// hold t.mu (either mode).
func (t *Tree) deltaEntriesSorted() []deltaEntry {
	if t.wbuf == nil || len(t.wbuf.entries) == 0 {
		return nil
	}
	out := make([]deltaEntry, 0, len(t.wbuf.entries))
	for _, e := range t.wbuf.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].obj.ID() < out[j].obj.ID() })
	return out
}

// baseHasLocked reports whether the base tree indexes an object with this
// SFC key and ID, by the same leaf scan Delete uses. Callers hold t.mu.
func (t *Tree) baseHasLocked(key, id uint64) (bool, error) {
	for c := t.bpt.Seek(key); c.Valid() && c.Key() == key; c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			return false, err
		}
		if obj.ID() == id {
			return true, nil
		}
	}
	if c := t.bpt.Seek(key); c.Err() != nil {
		return false, c.Err()
	}
	return false, nil
}

// applyInsertLocked folds one durable insert into the write buffer and
// maintains t.count. Stale LSNs (a concurrent mutator on the same ID won the
// WAL race) are dropped, which makes in-memory state a pure function of the
// WAL order — crash replay reproduces it exactly. Callers hold t.mu in write
// mode.
func (t *Tree) applyInsertLocked(obj metric.Object, key, lsn uint64) error {
	id := obj.ID()
	if old, ok := t.wbuf.entries[id]; ok {
		if old.lsn >= lsn {
			return nil
		}
		// Upsert of a buffered insert: still one live object.
		t.wbuf.entries[id] = deltaEntry{obj: obj, key: key, lsn: lsn}
		return nil
	}
	if tlsn, ok := t.wbuf.tombs[id]; ok {
		if tlsn >= lsn {
			return nil
		}
		// The ID was dead (tombstoned); this insert resurrects it.
		delete(t.wbuf.tombs, id)
		t.wbuf.entries[id] = deltaEntry{obj: obj, key: key, lsn: lsn}
		t.count++
		return nil
	}
	inBase, err := t.baseHasLocked(key, id)
	if err != nil {
		return err
	}
	t.wbuf.entries[id] = deltaEntry{obj: obj, key: key, lsn: lsn}
	if !inBase {
		t.count++
	}
	return nil
}

// applyDeleteLocked folds one durable delete into the write buffer and
// maintains t.count. Deletes of already-dead or never-present IDs are
// no-ops beyond refreshing the tombstone, so replaying a redundant record is
// harmless. Callers hold t.mu in write mode.
func (t *Tree) applyDeleteLocked(id, key, lsn uint64) error {
	if old, ok := t.wbuf.entries[id]; ok {
		if old.lsn >= lsn {
			return nil
		}
		delete(t.wbuf.entries, id)
		t.wbuf.tombs[id] = lsn
		t.count--
		return nil
	}
	if tlsn, ok := t.wbuf.tombs[id]; ok {
		if tlsn < lsn {
			t.wbuf.tombs[id] = lsn
		}
		return nil
	}
	inBase, err := t.baseHasLocked(key, id)
	if err != nil {
		return err
	}
	t.wbuf.tombs[id] = lsn
	if inBase {
		t.count--
	}
	return nil
}

// WAL payload encoding. Records carry everything apply needs, so replay
// never computes a distance: insert = ID, SFC key, object bytes; delete =
// ID, SFC key (the key lets apply re-check base membership for the live
// count).

// encodeInsertPayload builds a RecInsert payload.
func encodeInsertPayload(obj metric.Object, key uint64) []byte {
	b := make([]byte, 16, 16+32)
	binary.LittleEndian.PutUint64(b[0:8], obj.ID())
	binary.LittleEndian.PutUint64(b[8:16], key)
	return obj.AppendBinary(b)
}

// decodeInsertPayload parses a RecInsert payload back into an object.
func decodeInsertPayload(codec metric.Codec, p []byte) (obj metric.Object, key uint64, err error) {
	if len(p) < 16 {
		return nil, 0, fmt.Errorf("core: wal insert payload is %d bytes, want ≥ 16", len(p))
	}
	id := binary.LittleEndian.Uint64(p[0:8])
	key = binary.LittleEndian.Uint64(p[8:16])
	obj, err = codec.Decode(id, p[16:])
	if err != nil {
		return nil, 0, fmt.Errorf("core: wal insert payload: %w", err)
	}
	return obj, key, nil
}

// encodeDeletePayload builds a RecDelete payload.
func encodeDeletePayload(id, key uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:8], id)
	binary.LittleEndian.PutUint64(b[8:16], key)
	return b
}

// decodeDeletePayload parses a RecDelete payload.
func decodeDeletePayload(p []byte) (id, key uint64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("core: wal delete payload is %d bytes, want 16", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), nil
}
