package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"spbtree/internal/graph"
	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// Canonical file names of an index directory, shared by SaveAtomic, Load,
// Repair and spbtool.
const (
	// IndexPagesFile holds the B+-tree page store.
	IndexPagesFile = "index.pages"
	// DataPagesFile holds the RAF page store.
	DataPagesFile = "data.pages"
	// MetaFile holds the WriteMeta blob (checksummed footer included).
	MetaFile = "tree.meta"
	// metaTmpFile is the staging name SaveAtomic writes before renaming.
	metaTmpFile = "tree.meta.tmp"
	// GraphFile holds the approximate graph tier (versioned, checksummed;
	// see internal/graph). Absent when no graph was built at save time.
	GraphFile = "graph.bin"
	// graphTmpFile is the staging name for GraphFile's atomic write.
	graphTmpFile = "graph.bin.tmp"
)

// SaveAtomic persists the tree's meta to dir/tree.meta crash-safely. The
// sequence is: flush the RAF tail, fsync both page stores, write the meta
// blob (with its checksummed footer) to a temp file, fsync it, rename it
// over tree.meta, and fsync the directory. A crash at any point leaves
// either the previous meta or the new one — and because the meta embeds the
// checksum of every page it references, a meta that does not match the page
// files is detected as corruption rather than silently serving wrong
// results.
//
// The tree's page stores must live in dir (built there, or reopened via
// Load) for the resulting directory to be self-contained.
func (t *Tree) SaveAtomic(dir string) error {
	if err := t.Sync(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	var buf bytes.Buffer
	if err := t.WriteMeta(&buf); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	tmp := filepath.Join(dir, metaTmpFile)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("core: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: save: sync meta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, MetaFile)); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := t.saveGraph(dir); err != nil {
		return err
	}
	return syncDir(dir)
}

// saveGraph persists the live approximate graph alongside the meta (same
// tmp/fsync/rename discipline), or removes a stale graph.bin when the tree
// has none — a reload must never pair an old graph with a newer base.
func (t *Tree) saveGraph(dir string) error {
	t.mu.RLock()
	var blob []byte
	if g := t.graphLive(); g != nil {
		blob = g.Encode()
	}
	t.mu.RUnlock()
	if blob == nil {
		if err := os.Remove(filepath.Join(dir, GraphFile)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: save: %w", err)
		}
		return nil
	}
	tmp := filepath.Join(dir, graphTmpFile)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return fmt.Errorf("core: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: save: sync graph: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, GraphFile)); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("core: save: sync dir: %w", err)
	}
	return nil
}

// LoadOptions configures Load and Repair: the build-time metric and codec,
// plus the cache and traversal knobs of OpenOptions (the stores themselves
// come from the directory).
type LoadOptions struct {
	// Distance and Codec must match the tree's build-time configuration;
	// required.
	Distance metric.DistanceFunc
	Codec    metric.Codec
	// CacheSize is the buffer-cache capacity (default 32; negative
	// disables).
	CacheSize int
	// Traversal selects the kNN strategy.
	Traversal TraversalStrategy
	// Workers is the per-query verifier pool size (see Options.Workers):
	// 0 selects the default, 1 forces serial execution.
	Workers int
	// DisableBoundedKernels turns off threshold-aware distance evaluation
	// (see Options.DisableBoundedKernels).
	DisableBoundedKernels bool
}

// Load reopens an index directory written by SaveAtomic (or spbtool build):
// it opens the two page stores, validates the meta footer, and arms page
// checksum validation. The returned tree owns the stores; Close it when
// done.
func Load(dir string, opts LoadOptions) (*Tree, error) {
	idx, err := page.OpenFileStore(filepath.Join(dir, IndexPagesFile))
	if err != nil {
		return nil, err
	}
	data, err := page.OpenFileStore(filepath.Join(dir, DataPagesFile))
	if err != nil {
		idx.Close()
		return nil, err
	}
	mf, err := os.Open(filepath.Join(dir, MetaFile))
	if err != nil {
		idx.Close()
		data.Close()
		return nil, err
	}
	defer mf.Close()
	t, err := Open(mf, OpenOptions{
		Distance: opts.Distance, Codec: opts.Codec,
		IndexStore: idx, DataStore: data,
		CacheSize: opts.CacheSize, Traversal: opts.Traversal,
		Workers: opts.Workers, DisableBoundedKernels: opts.DisableBoundedKernels,
	})
	if err != nil {
		idx.Close()
		data.Close()
		return nil, err
	}
	if err := t.loadGraph(dir); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// loadGraph reattaches a saved approximate graph, if any. A missing file
// means no graph (not an error); a file that fails its checksum or structural
// validation fails the load with graph.ErrCorrupt; a structurally valid graph
// that does not match the reopened base (count, size, or offsets) is ignored
// — it belongs to some other state of the tree and queries must not use it.
func (t *Tree) loadGraph(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, GraphFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("core: load: %w", err)
	}
	g, err := graph.Decode(raw)
	if err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if g.BaseCount != uint64(t.raf.Count()) || g.BaseSize != t.raf.Size() {
		return nil
	}
	for _, off := range g.Offs {
		if off >= g.BaseSize {
			return nil
		}
	}
	t.graph = newGraphTier(g, t.raf)
	return nil
}
