package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"spbtree/internal/bptree"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/raf"
	"spbtree/internal/wal"
)

// ErrClosed matches (errors.Is) operations attempted on a closed tree, and
// mutators that were still pending when Close ran. A mutation rejected with
// ErrClosed after its WAL append already succeeded is still durable — it
// reappears via replay on the next OpenDurable — the usual
// commit-during-shutdown ambiguity of any logged system.
var ErrClosed = errors.New("core: tree closed")

// Canonical names inside a durable directory (DESIGN.md §11).
const (
	// CurrentFile points at the live generation directory.
	CurrentFile = "CURRENT"
	// currentTmpFile stages CURRENT before the atomic rename.
	currentTmpFile = "CURRENT.tmp"
	// WALDir holds the write-ahead log segments.
	WALDir = "wal"
	// AppliedLSNFile records, inside a generation directory, the WAL
	// watermark folded into that generation's base tree.
	AppliedLSNFile = "applied.lsn"
	// genPrefix names generation directories: gen-%06d.
	genPrefix = "gen-"
)

// defaultCompactThreshold triggers background compaction once the write
// buffer holds this many mutations.
const defaultCompactThreshold = 4096

// DurableOptions configures the write path of CreateDurable/OpenDurable.
type DurableOptions struct {
	// CompactThreshold is the write-buffer size (buffered inserts +
	// tombstones) at which background compaction starts folding the delta
	// into a fresh base generation. 0 selects 4096; negative disables
	// automatic compaction (CompactNow still works).
	CompactThreshold int
	// NoSync makes WAL group commits skip their fsync: acknowledged writes
	// are crash-unsafe. For benchmarks quantifying the cost of durability.
	NoSync bool
	// WALSegmentBytes is the WAL segment rotation threshold (default 64 MiB).
	WALSegmentBytes int64
	// FS substitutes the WAL's filesystem, for fault injection in tests. nil
	// selects the host filesystem. The page stores and generation files
	// always use the host filesystem.
	FS wal.FS
}

// durableState is the per-tree write-path machinery: the WAL, the
// generation bookkeeping, and the background compactor.
type durableState struct {
	dir  string
	opts DurableOptions
	log  *wal.Log

	// gen and applied are guarded by the tree's mu (written only under the
	// write lock in compactOnce's swap phase).
	gen     uint64
	applied uint64

	// inflight fences the gap between a mutation's WAL acknowledgement (its
	// LSN is allocated) and its application to the write buffer. Mutators hold
	// it shared across Append+apply; compactOnce holds it exclusively while
	// snapshotting, so the snapshot's high-water LSN never has an unapplied
	// LSN below it. Without the fence, a writer assigned LSN L could be outrun
	// by one assigned L+1: the snapshot would set highLSN = L+1, the swap
	// would prune entry L as "at or below the watermark" without it ever
	// reaching the new base, and an acknowledged write would be lost (the
	// persisted applied.lsn would likewise skip it on replay).
	inflight sync.RWMutex

	// compactMu serializes compaction runs (the background goroutine and
	// explicit CompactNow calls).
	compactMu sync.Mutex
	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// Test hooks simulating a crash just before / just after the CURRENT
	// rename: when set and returning an error, compactOnce aborts there.
	hookBeforeCurrent func() error
	hookAfterCurrent  func() error
}

// genName formats a generation directory name.
func genName(gen uint64) string { return fmt.Sprintf("%s%06d", genPrefix, gen) }

// writeCurrent atomically points dir/CURRENT at the given generation:
// temp write + fsync + rename + directory fsync, the same discipline as
// SaveAtomic. After it returns, reopening the directory loads that
// generation.
func writeCurrent(dir string, gen uint64) error {
	tmp := filepath.Join(dir, currentTmpFile)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: write CURRENT: %w", err)
	}
	if _, err := f.Write([]byte(genName(gen) + "\n")); err != nil {
		f.Close()
		return fmt.Errorf("core: write CURRENT: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync CURRENT: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: write CURRENT: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, CurrentFile)); err != nil {
		return fmt.Errorf("core: write CURRENT: %w", err)
	}
	return syncDir(dir)
}

// readCurrent reads which generation dir/CURRENT points at.
func readCurrent(dir string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, CurrentFile))
	if err != nil {
		return 0, err
	}
	name := strings.TrimSpace(string(raw))
	if !strings.HasPrefix(name, genPrefix) {
		return 0, fmt.Errorf("core: CURRENT names %q, want %s*", name, genPrefix)
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len(genPrefix):], "%d", &gen); err != nil || gen == 0 {
		return 0, fmt.Errorf("core: CURRENT names %q: bad generation", name)
	}
	return gen, nil
}

// writeAppliedLSN records the WAL watermark inside a generation directory,
// footer-checksummed like the tree meta. No atomicity is needed: the file is
// written before CURRENT makes the generation reachable.
func writeAppliedLSN(genDir string, lsn uint64) error {
	payload := binary.LittleEndian.AppendUint64(nil, lsn)
	f, err := os.OpenFile(filepath.Join(genDir, AppliedLSNFile), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: write applied.lsn: %w", err)
	}
	if _, err := f.Write(appendMetaFooter(payload)); err != nil {
		f.Close()
		return fmt.Errorf("core: write applied.lsn: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync applied.lsn: %w", err)
	}
	return f.Close()
}

// readAppliedLSN reads a generation's WAL watermark.
func readAppliedLSN(genDir string) (uint64, error) {
	raw, err := os.ReadFile(filepath.Join(genDir, AppliedLSNFile))
	if err != nil {
		return 0, err
	}
	payload, err := checkMetaFooter(raw)
	if err != nil {
		return 0, fmt.Errorf("core: applied.lsn: %w", err)
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: applied.lsn payload is %d bytes, want 8", ErrCorruptMeta, len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// CreateDurable builds a fresh durable tree over objects at dir: generation
// 1 holds the bulk-loaded base (via Build + SaveAtomic), CURRENT points at
// it, and an empty WAL absorbs subsequent writes. opts must not supply page
// stores — the generation layout owns them.
func CreateDurable(dir string, objects []metric.Object, opts Options, dopts DurableOptions) (*Tree, error) {
	if opts.IndexStore != nil || opts.DataStore != nil {
		return nil, fmt.Errorf("core: CreateDurable manages its own page stores; leave Options.IndexStore/DataStore nil")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create durable: %w", err)
	}
	const gen = 1
	genDir := filepath.Join(dir, genName(gen))
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create durable: %w", err)
	}
	idx, err := page.NewFileStore(filepath.Join(genDir, IndexPagesFile))
	if err != nil {
		return nil, err
	}
	data, err := page.NewFileStore(filepath.Join(genDir, DataPagesFile))
	if err != nil {
		idx.Close()
		return nil, err
	}
	opts.IndexStore, opts.DataStore = idx, data
	t, err := Build(objects, opts)
	if err != nil {
		idx.Close()
		data.Close()
		return nil, err
	}
	if err := t.SaveAtomic(genDir); err != nil {
		t.Close()
		return nil, err
	}
	if err := writeAppliedLSN(genDir, 0); err != nil {
		t.Close()
		return nil, err
	}
	if err := writeCurrent(dir, gen); err != nil {
		t.Close()
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, WALDir), wal.Options{
		FS: dopts.FS, NoSync: dopts.NoSync, SegmentBytes: dopts.WALSegmentBytes,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	t.attachDurable(dir, gen, 0, log, dopts)
	return t, nil
}

// OpenDurable reopens a durable directory: load the CURRENT generation,
// replay the WAL tail beyond its applied watermark into the write buffer
// (recovering every acknowledged write), truncate any torn WAL tail, sweep
// generations orphaned by a mid-compaction crash, and restart the
// compactor. Corruption outside the legal crash window (a bad frame below
// the WAL tail, a bad meta) fails with a typed error instead of opening a
// wrong tree.
func OpenDurable(dir string, lopts LoadOptions, dopts DurableOptions) (*Tree, error) {
	gen, err := readCurrent(dir)
	if err != nil {
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	genDir := filepath.Join(dir, genName(gen))
	t, err := Load(genDir, lopts)
	if err != nil {
		return nil, err
	}
	applied, err := readAppliedLSN(genDir)
	if err != nil {
		t.Close()
		return nil, err
	}
	t.wbuf = newDeltaState()
	walDir := filepath.Join(dir, WALDir)
	// Replay is single-threaded on a tree nobody else can see yet, so the
	// *Locked apply helpers run without the lock.
	_, err = wal.Replay(walDir, dopts.FS, applied, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecInsert:
			obj, key, err := decodeInsertPayload(t.codec, rec.Payload)
			if err != nil {
				return err
			}
			return t.applyInsertLocked(obj, key, rec.LSN)
		case wal.RecDelete:
			id, key, err := decodeDeletePayload(rec.Payload)
			if err != nil {
				return err
			}
			return t.applyDeleteLocked(id, key, rec.LSN)
		default:
			return fmt.Errorf("core: wal replay: unknown record type %d at LSN %d", rec.Type, rec.LSN)
		}
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	log, err := wal.Open(walDir, wal.Options{
		FS: dopts.FS, NoSync: dopts.NoSync, SegmentBytes: dopts.WALSegmentBytes,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	// Sweep generations a crashed compaction left behind: a newer one that
	// never reached its CURRENT rename, or an older one whose removal did
	// not complete.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), genPrefix) && e.Name() != genName(gen) {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
		os.Remove(filepath.Join(dir, currentTmpFile))
	}
	// A crash between the CURRENT rename and the WAL checkpoint leaves
	// segments fully below the watermark; retire them now.
	if err := log.Checkpoint(applied); err != nil {
		log.Close()
		t.Close()
		return nil, err
	}
	t.attachDurable(dir, gen, applied, log, dopts)
	// Recovery may have replayed a large tail straight into the buffer.
	t.dur.maybeCompact(t.deltaSize())
	return t, nil
}

// attachDurable arms the write path on a freshly built/loaded tree and
// starts the compactor goroutine.
func (t *Tree) attachDurable(dir string, gen, applied uint64, log *wal.Log, dopts DurableOptions) {
	if dopts.CompactThreshold == 0 {
		dopts.CompactThreshold = defaultCompactThreshold
	}
	if t.wbuf == nil {
		t.wbuf = newDeltaState()
	}
	d := &durableState{
		dir:  dir,
		opts: dopts,
		log:  log,
		gen:  gen, applied: applied,
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	t.dur = d
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			select {
			case <-d.done:
				return
			case <-d.compactCh:
				// Background best-effort: a failed attempt is retried on the
				// next trigger; CompactNow surfaces errors to callers.
				d.compactOnce(t)
			}
		}
	}()
}

// maybeCompact nudges the compactor when the buffer crossed the threshold.
// Non-blocking: if a run is already queued or active, the nudge coalesces.
func (d *durableState) maybeCompact(size int) {
	if d.opts.CompactThreshold < 0 || size < d.opts.CompactThreshold {
		return
	}
	select {
	case d.compactCh <- struct{}{}:
	default:
	}
}

// CompactNow synchronously folds the write buffer into a fresh base
// generation (see compactOnce) regardless of the threshold. It errors on
// non-durable trees.
func (t *Tree) CompactNow() error {
	if t.dur == nil {
		return fmt.Errorf("core: CompactNow: not a durable tree")
	}
	return t.dur.compactOnce(t)
}

// WALStats reports the WAL's group-commit counters; ok is false for
// non-durable trees.
func (t *Tree) WALStats() (s wal.Stats, ok bool) {
	if t.dur == nil {
		return wal.Stats{}, false
	}
	return t.dur.log.Stats(), true
}

// DeltaLen reports how many buffered mutations (inserts + tombstones) await
// compaction. Zero for non-durable trees.
func (t *Tree) DeltaLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.deltaSize()
}

// Durable reports whether the tree runs the WAL-backed write path.
func (t *Tree) Durable() bool { return t.dur != nil }

// HoldCompaction blocks background and explicit compaction until the
// returned release function is called. While held, the generation directory
// and WAL segment set are frozen on disk (appends still go to the newest WAL
// segment unless the caller also stops mutations), which is what shard
// handoff needs to copy a consistent durable directory out from under a live
// tree. The release function is idempotent, and it MUST be called before
// Close — the compactor goroutine Close joins could otherwise be parked on
// the held lock. Errors on non-durable trees.
func (t *Tree) HoldCompaction() (release func(), err error) {
	if t.dur == nil {
		return nil, fmt.Errorf("core: HoldCompaction: not a durable tree")
	}
	t.dur.compactMu.Lock()
	var once sync.Once
	return func() { once.Do(t.dur.compactMu.Unlock) }, nil
}

// compactOnce folds the write buffer into a fresh base generation. The
// state machine (DESIGN.md §11):
//
//  1. snapshot, under the read lock: the live object set (base minus
//     shadowed, plus buffered inserts), the high watermark LSN, and the
//     cost-model distributions;
//  2. build, off-lock: bulk-load fresh substrates in exact SFC order into
//     gen-(N+1) file stores and SaveAtomic the meta — queries and mutators
//     proceed concurrently against the old generation;
//  3. publish: write applied.lsn = watermark, then atomically repoint
//     CURRENT (the durability flip: a crash before the rename recovers into
//     the old generation, after it into the new — both exact);
//  4. swap, under the write lock: switch the substrates in, prune every
//     buffered mutation at or below the watermark (later ones stay and keep
//     shadowing), recompute the live count from the snapshot;
//  5. retire: checkpoint the WAL up to the watermark and remove the old
//     generation. A crash here is healed by OpenDurable's sweep.
func (d *durableState) compactOnce(t *Tree) error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	// Phase 1: snapshot under the read lock.
	type liveEntry struct {
		key uint64
		obj metric.Object
	}
	// The exclusive inflight acquisition drains every mutator sitting between
	// its WAL acknowledgement and its write-buffer apply: once it is held,
	// every allocated LSN is visible in wbuf, so max(wbuf LSNs) is a gap-free
	// watermark. New mutators block at the fence (not holding t.mu), so the
	// read lock below cannot deadlock against them.
	d.inflight.Lock()
	t.mu.RLock()
	snapDone := func() {
		t.mu.RUnlock()
		d.inflight.Unlock()
	}
	if t.closed {
		snapDone()
		return ErrClosed
	}
	if !t.deltaActive() {
		snapDone()
		return nil
	}
	var highLSN uint64
	for _, e := range t.wbuf.entries {
		if e.lsn > highLSN {
			highLSN = e.lsn
		}
	}
	for _, lsn := range t.wbuf.tombs {
		if lsn > highLSN {
			highLSN = lsn
		}
	}
	var live []liveEntry
	for c := t.bpt.SeekFirst(); c.Valid(); c.Next() {
		obj, err := t.raf.Read(c.Val())
		if err != nil {
			snapDone()
			return err
		}
		if t.deltaShadowed(obj.ID()) {
			continue
		}
		live = append(live, liveEntry{key: c.Key(), obj: obj})
	}
	if c := t.bpt.SeekFirst(); c.Err() != nil {
		err := c.Err()
		snapDone()
		return err
	}
	for _, e := range t.wbuf.entries {
		live = append(live, liveEntry{key: e.key, obj: e.obj})
	}
	countSnap := t.count
	cmSnap := t.cm.snapshot()
	idxCap, dataCap := t.idxCache.Capacity(), t.dataCache.Capacity()
	snapDone()

	sort.Slice(live, func(i, j int) bool {
		if live[i].key != live[j].key {
			return live[i].key < live[j].key
		}
		return live[i].obj.ID() < live[j].obj.ID()
	})

	// Phase 2: build the next generation off-lock.
	newGen := d.gen + 1
	genDir := filepath.Join(d.dir, genName(newGen))
	os.RemoveAll(genDir) // leftover from an earlier crashed/failed attempt
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return fmt.Errorf("core: compact: %w", err)
	}
	idxStore, err := page.NewFileStore(filepath.Join(genDir, IndexPagesFile))
	if err != nil {
		return err
	}
	dataStore, err := page.NewFileStore(filepath.Join(genDir, DataPagesFile))
	if err != nil {
		idxStore.Close()
		return err
	}
	newIdxSums := page.NewChecksumStore(idxStore)
	newDataSums := page.NewChecksumStore(dataStore)
	newIdxCache := page.NewCache(newIdxSums, idxCap)
	newDataCache := page.NewCache(newDataSums, dataCap)
	fail := func(err error) error {
		newIdxCache.Close()
		newDataCache.Close()
		os.RemoveAll(genDir)
		return err
	}
	newBpt, err := bptree.New(newIdxCache, bptree.Options{Geometry: curveGeometry{t.curve}})
	if err != nil {
		return fail(err)
	}
	newRAF := raf.New(newDataCache, t.codec)
	entries := make([]bptree.Pair, len(live))
	for i, e := range live {
		off, err := newRAF.Append(e.obj)
		if err != nil {
			return fail(err)
		}
		entries[i] = bptree.Pair{Key: e.key, Val: off}
	}
	if err := newRAF.Flush(); err != nil {
		return fail(err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	if err := newBpt.BulkLoad(entries); err != nil {
		return fail(err)
	}
	// A shadow tree over the new substrates gives SaveAtomic/WriteMeta the
	// exact layout Load expects; its count is the snapshot's live total and
	// its cost model the snapshot copy.
	shadow := &Tree{
		codec: t.codec, pivots: t.pivots, curve: t.curve, kind: t.kind,
		delta: t.delta, exact: t.exact, bits: t.bits, dPlus: t.dPlus,
		noLemma2: t.noLemma2, noSFCMerge: t.noSFCMerge,
		bpt: newBpt, raf: newRAF,
		idxSums: newIdxSums, dataSums: newDataSums,
		idxCache: newIdxCache, dataCache: newDataCache,
		count: len(live), cm: cmSnap,
	}
	if err := shadow.SaveAtomic(genDir); err != nil {
		return fail(err)
	}
	if err := writeAppliedLSN(genDir, highLSN); err != nil {
		return fail(err)
	}

	// Phase 3: publish.
	if d.hookBeforeCurrent != nil {
		if err := d.hookBeforeCurrent(); err != nil {
			return fail(err)
		}
	}
	if err := writeCurrent(d.dir, newGen); err != nil {
		return fail(err)
	}
	if d.hookAfterCurrent != nil {
		if err := d.hookAfterCurrent(); err != nil {
			// Past the rename the new generation IS the durable truth; do
			// not delete it. The in-memory swap simply has not happened.
			newIdxCache.Close()
			newDataCache.Close()
			return err
		}
	}

	// Phase 4: swap under the write lock.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		newIdxCache.Close()
		newDataCache.Close()
		return ErrClosed
	}
	oldIdxCache, oldDataCache := t.idxCache, t.dataCache
	oldGen := d.gen
	t.bpt = newBpt
	t.raf = newRAF
	t.idxSums = newIdxSums
	t.dataSums = newDataSums
	t.idxCache = newIdxCache
	t.dataCache = newDataCache
	// Mutations applied while phases 2–3 ran stay buffered (their LSNs are
	// above the watermark) and keep shadowing the new base; everything at or
	// below it is now base state.
	for id, e := range t.wbuf.entries {
		if e.lsn <= highLSN {
			delete(t.wbuf.entries, id)
		}
	}
	for id, lsn := range t.wbuf.tombs {
		if lsn <= highLSN {
			delete(t.wbuf.tombs, id)
		}
	}
	// The snapshot's live total plus whatever the post-snapshot mutations
	// contributed incrementally.
	t.count = len(live) + (t.count - countSnap)
	d.gen = newGen
	d.applied = highLSN
	t.cm.markDirty()
	// The approximate graph indexed the old generation's offsets; drop it.
	// (Buffered writes never invalidate the graph — queries merge them — so
	// this swap is the only point a durable tree loses its graph.)
	t.graph = nil
	t.wireTracer()
	t.mu.Unlock()
	oldIdxCache.Close()
	oldDataCache.Close()

	// Phase 5: retire the log prefix and the old generation.
	if err := d.log.Checkpoint(highLSN); err != nil {
		return err
	}
	os.RemoveAll(filepath.Join(d.dir, genName(oldGen)))
	return syncDir(d.dir)
}
