package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"spbtree/internal/metric"
)

// planTestTree builds a small clustered vector tree with the planner active.
func planTestTree(t *testing.T, n int, disable bool) (*Tree, []metric.Object, metric.DistanceFunc) {
	t.Helper()
	objs := vectorSet(n, 6, 71)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3, Seed: 3,
		Workers: 4, DisablePlanner: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tree.Close() })
	return tree, objs, dist
}

// warmPlanner runs enough queries to push the calibration EWMAs past the
// trust threshold.
func warmPlanner(t *testing.T, tree *Tree, objs []metric.Object, r float64) {
	t.Helper()
	for i := 0; i < plannerMinSamples+8; i++ {
		if _, err := tree.RangeQuery(objs[i%len(objs)], r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKNNWithinMatchesKNN is the §15.2 seeding property: an infinite seed is
// plain KNN, a seed at the true k-th distance is plain KNN, and a tighter
// seed returns exactly the KNN prefix within the seed — for both traversal
// strategies, serial and parallel, continuous and discrete metrics.
func TestKNNWithinMatchesKNN(t *testing.T) {
	type cfg struct {
		name  string
		objs  []metric.Object
		dist  metric.DistanceFunc
		codec metric.Codec
	}
	cfgs := []cfg{
		{"l2", vectorSet(1200, 5, 61), metric.L2(5), metric.VectorCodec{Dim: 5}},
		{"edit", wordSet(1200, 62), metric.EditDistance{MaxLen: 24}, metric.StrCodec{}},
	}
	const k = 8
	for _, c := range cfgs {
		for _, trav := range []TraversalStrategy{Incremental, Greedy} {
			tree, err := Build(c.objs, Options{
				Distance: c.dist, Codec: c.codec, NumPivots: 3, Seed: 5, Traversal: trav,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				tree.SetWorkers(workers)
				label := c.name + "/" + trav.String()
				for qi := 0; qi < 5; qi++ {
					q := c.objs[qi*7]
					exact, err := tree.KNN(q, k)
					if err != nil {
						t.Fatal(err)
					}
					kth := exact[len(exact)-1].Dist

					inf, err := tree.KNNWithin(q, k, math.Inf(1))
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, label+"/seed=inf", exact, inf)

					atKth, err := tree.KNNWithin(q, k, kth)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, label+"/seed=kth", exact, atKth)

					// A tighter seed keeps exactly the members within it.
					tight := kth * 0.6
					var want []Result
					for _, x := range exact {
						if x.Dist <= tight {
							want = append(want, x)
						}
					}
					got, err := tree.KNNWithin(q, k, tight)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, label+"/seed=tight", want, got)
				}
			}
			tree.Close()
		}
	}
}

// TestKNNCanonicalAcrossStrategies pins the §15.1 canonicalization: on a
// discrete metric riddled with distance ties, every traversal strategy and
// worker count returns the identical (dist, ID) top-k — the property the
// forest's staged scatter is built on.
func TestKNNCanonicalAcrossStrategies(t *testing.T) {
	objs := wordSet(1500, 63)
	dist := metric.EditDistance{MaxLen: 24}
	var baseline [][]Result
	for _, trav := range []TraversalStrategy{Incremental, Greedy} {
		tree, err := Build(objs, Options{
			Distance: dist, Codec: metric.StrCodec{}, NumPivots: 3, Seed: 5,
			Traversal: trav,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			tree.SetWorkers(workers)
			var runs [][]Result
			for qi := 0; qi < 8; qi++ {
				res, err := tree.KNN(objs[qi*11], 10)
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, res)
			}
			if baseline == nil {
				baseline = runs
				continue
			}
			for qi := range runs {
				sameResults(t, trav.String(), baseline[qi], runs[qi])
			}
		}
		tree.Close()
	}
}

// TestPlannerModes walks the fallback ladder of §15.3: fixed when disabled or
// single-worker, uncalibrated before enough samples, dirty-model after
// writes, planned in calibrated steady state.
func TestPlannerModes(t *testing.T) {
	tree, objs, dist := planTestTree(t, 1500, false)
	r := 0.1 * dist.MaxDistance()
	q := objs[0]

	// Uncalibrated: a fresh tree has no EWMA history.
	_, qs, err := tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModeUncalibrated {
		t.Fatalf("fresh tree plan mode = %q, want %q", qs.Plan.Mode, PlanModeUncalibrated)
	}

	warmPlanner(t, tree, objs, r)
	st := tree.PlannerState()
	if !st.Enabled || !st.Calibrated || st.NSPerCompdist <= 0 {
		t.Fatalf("planner not calibrated after warmup: %+v", st)
	}
	_, qs, err = tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModePlanned {
		t.Fatalf("calibrated plan mode = %q, want %q", qs.Plan.Mode, PlanModePlanned)
	}
	if qs.Plan.EDC <= 0 || qs.Plan.NSPerCompdist <= 0 {
		t.Fatalf("planned decision missing inputs: %+v", qs.Plan)
	}
	_, qs, err = tree.KNNWithStats(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModePlanned {
		t.Fatalf("calibrated kNN plan mode = %q, want %q", qs.Plan.Mode, PlanModePlanned)
	}

	// Writes dirty the MBB snapshot: the planner steps aside rather than
	// rebuild it under the read lock.
	if err := tree.Insert(metric.NewVector(900001, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})); err != nil {
		t.Fatal(err)
	}
	_, qs, err = tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModeDirtyModel {
		t.Fatalf("post-write plan mode = %q, want %q", qs.Plan.Mode, PlanModeDirtyModel)
	}
	// An off-query estimate refreshes the snapshot; planning resumes.
	if _, err := tree.EstimateRange(q, r); err != nil {
		t.Fatal(err)
	}
	_, qs, err = tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModePlanned {
		t.Fatalf("post-refresh plan mode = %q, want %q", qs.Plan.Mode, PlanModePlanned)
	}

	// Single-worker and disabled trees never plan.
	tree.SetWorkers(1)
	_, qs, err = tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModeFixed {
		t.Fatalf("single-worker plan mode = %q, want %q", qs.Plan.Mode, PlanModeFixed)
	}
	tree.SetWorkers(4)

	off, objs2, dist2 := planTestTree(t, 400, true)
	warmPlanner(t, off, objs2, 0.1*dist2.MaxDistance())
	_, qs, err = off.RangeSearchWithStats(objs2[0], 0.1*dist2.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.Mode != PlanModeFixed {
		t.Fatalf("DisablePlanner plan mode = %q, want %q", qs.Plan.Mode, PlanModeFixed)
	}
	if off.PlannerState().Enabled {
		t.Fatal("DisablePlanner tree reports Enabled")
	}
}

// TestPlanDecideSizing unit-tests the §15.3 decision function: cheap queries
// run serial, expensive ones scale with predicted cost, clamped to the
// tree's worker budget.
func TestPlanDecideSizing(t *testing.T) {
	tree, _, _ := planTestTree(t, 200, false)
	tree.plr.nsComp.Store(math.Float64bits(100)) // 100ns per compdist
	tree.plr.nsPage.Store(math.Float64bits(5000))

	// 500 compdists · 100ns = 50µs < cutoff → serial.
	info, want := tree.planDecide(CostEstimate{EDC: 500})
	if want != 0 || info.Workers != 0 {
		t.Fatalf("cheap query wants %d workers, want 0", want)
	}
	// 3000 compdists + 20 pages = 400µs → ⌊400/150⌋ = 2 workers.
	info, want = tree.planDecide(CostEstimate{EDC: 3000, EPA: 20})
	if want != 2 {
		t.Fatalf("medium query wants %d workers, want 2", want)
	}
	if info.CostNS != 3000*100+20*5000 {
		t.Fatalf("CostNS = %v", info.CostNS)
	}
	// Hugely expensive → clamped to the tree's budget.
	_, want = tree.planDecide(CostEstimate{EDC: 1e6})
	if want != tree.Workers() {
		t.Fatalf("expensive query wants %d workers, want %d", want, tree.Workers())
	}
}

// TestPlanEstimateReconciliation is the estimator-accuracy regression gate
// (ISSUE 10 satellite): the EDC/EPA a planned query recorded in its own
// QueryStats.Plan must reconcile with what the query then observed, within
// the tolerance of the §5 accuracy tests — catching silent cost-model drift
// at the exact point the planner consumes the numbers.
func TestPlanEstimateReconciliation(t *testing.T) {
	// Caching off (CacheSize < 0): EPA models uncached page accesses, and a
	// warm 2000-object tree fits the default caches entirely, observing 0.
	objs := vectorSet(2000, 6, 71)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3, Seed: 3,
		Workers: 4, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	r := 0.08 * dist.MaxDistance()
	warmPlanner(t, tree, objs, r)
	rng := rand.New(rand.NewSource(9))
	var accEDC, ratioEPA float64
	const trials = 30
	for i := 0; i < trials; i++ {
		q := objs[rng.Intn(len(objs))]
		_, qs, err := tree.RangeSearchWithStats(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if qs.Plan.Mode != PlanModePlanned {
			t.Fatalf("trial %d mode %q", i, qs.Plan.Mode)
		}
		accEDC += accuracy(float64(qs.Compdists), qs.Plan.EDC)
		if pa := float64(qs.PageAccesses()); pa > 0 {
			ratioEPA += qs.Plan.EPA / pa
		}
	}
	accEDC /= trials
	ratioEPA /= trials
	if accEDC < 0.6 {
		t.Errorf("planned range EDC accuracy %.2f too low", accEDC)
	}
	// EPA models distinct page touches under ideal buffering; uncached
	// execution re-reads pages per batch, so observed PA runs a small factor
	// above the prediction. Band the ratio rather than demanding equality:
	// drift to ~0 (model collapse) or past ~2 (model explosion) fails.
	if ratioEPA < 0.1 || ratioEPA > 2 {
		t.Errorf("planned range EPA/observed-PA ratio %.2f outside [0.1, 2]", ratioEPA)
	}

	// The kNN side prices with a capped reservoir sample; demand the looser
	// floor of the §5 kNN accuracy test.
	var accKNN float64
	for i := 0; i < trials; i++ {
		q := objs[rng.Intn(len(objs))]
		_, qs, err := tree.KNNWithStats(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if qs.Plan.Mode != PlanModePlanned {
			t.Fatalf("kNN trial %d mode %q", i, qs.Plan.Mode)
		}
		accKNN += accuracy(float64(qs.Compdists), qs.Plan.EDC)
	}
	accKNN /= trials
	if accKNN < 0.3 {
		t.Errorf("planned kNN EDC accuracy %.2f too low", accKNN)
	}
}

// TestExplainMatchesExecution: the explain path reports the same decision a
// live query then records, without executing anything.
func TestExplainMatchesExecution(t *testing.T) {
	tree, objs, dist := planTestTree(t, 1500, false)
	r := 0.1 * dist.MaxDistance()
	warmPlanner(t, tree, objs, r)
	q := objs[3]

	info, err := tree.ExplainRange(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != PlanModePlanned {
		t.Fatalf("explain mode %q", info.Mode)
	}
	_, qs, err := tree.RangeSearchWithStats(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan.EDC != info.EDC || qs.Plan.EPA != info.EPA {
		t.Fatalf("explain EDC/EPA %v/%v, executed %v/%v", info.EDC, info.EPA, qs.Plan.EDC, qs.Plan.EPA)
	}

	kinfo, err := tree.ExplainKNN(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if kinfo.Mode != PlanModePlanned || kinfo.Radius <= 0 {
		t.Fatalf("explain kNN: %+v", kinfo)
	}

	// Explain refreshes a dirty snapshot (it is an off-query path).
	if err := tree.Insert(metric.NewVector(900002, []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4})); err != nil {
		t.Fatal(err)
	}
	info, err = tree.ExplainRange(q, r)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != PlanModePlanned {
		t.Fatalf("explain after write mode %q, want planned (explain refreshes)", info.Mode)
	}
}

// TestSummaryAndHints exercises the §15.4 shard-planning surface on a single
// tree: the summary box lower-bounds real distances, prunable hints are
// sound (a prunable shard really contributes nothing), and hints survive
// writes by withholding estimates rather than failing.
func TestSummaryAndHints(t *testing.T) {
	tree, objs, dist := planTestTree(t, 800, false)

	s, err := tree.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != len(objs) {
		t.Fatalf("summary count %d, want %d", s.Count, len(objs))
	}
	for i := range s.Lo {
		if s.Lo[i] > s.Hi[i] {
			t.Fatalf("pivot %d: inverted interval [%v, %v] on a full tree", i, s.Lo[i], s.Hi[i])
		}
	}

	// MinDist is a lower bound on the true nearest distance; for an indexed
	// query object the true distance is 0, so MinDist must be 0.
	h, err := tree.KNNHint(objs[5], 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.MinDist != 0 {
		t.Fatalf("KNNHint(indexed object).MinDist = %v, want 0", h.MinDist)
	}
	if !h.Estimated || h.EDC <= 0 {
		t.Fatalf("clean-model hint missing estimates: %+v", h)
	}

	// MinDist lower-bounds every query's true nearest distance.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		coords := make([]float64, 6)
		for j := range coords {
			coords[j] = 4 * rng.Float64() // often far outside the data cube
		}
		q := metric.NewVector(777000+uint64(trial), coords)
		h, err := tree.RangeHint(q, 0.05*dist.MaxDistance())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tree.KNN(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if h.MinDist > res[0].Dist+1e-9 {
			t.Fatalf("MinDist %v exceeds true nearest %v", h.MinDist, res[0].Dist)
		}
		if h.Prunable {
			rr, err := tree.RangeQuery(q, 0.05*dist.MaxDistance())
			if err != nil {
				t.Fatal(err)
			}
			if len(rr) != 0 {
				t.Fatalf("prunable hint but range returned %d results", len(rr))
			}
		}
	}

	// Dirty model: hints stay available, estimates are withheld.
	if err := tree.Insert(metric.NewVector(900003, []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3})); err != nil {
		t.Fatal(err)
	}
	h, err = tree.KNNHint(objs[5], 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Estimated {
		t.Fatal("dirty-model hint still claims estimates")
	}

	// Emptied tree: infinitely far, always prunable.
	few := vectorSet(4, 6, 73)
	empty, err := Build(few, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	for _, o := range few {
		if err := empty.Delete(o); err != nil {
			t.Fatal(err)
		}
	}
	eh, err := empty.RangeHint(objs[0], dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if !eh.Prunable || !math.IsInf(eh.MinDist, 1) {
		t.Fatalf("empty-tree hint: %+v", eh)
	}
}

// TestPlannerConcurrentWrites is the -race stress of §15.6: queries planning
// (and feeding the EWMAs) while writes dirty the model and estimates refresh
// it. Correctness here is "no race, no panic, plans always name a mode".
func TestPlannerConcurrentWrites(t *testing.T) {
	tree, objs, dist := planTestTree(t, 1000, false)
	r := 0.08 * dist.MaxDistance()
	warmPlanner(t, tree, objs, r)

	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := objs[(g*31+i)%len(objs)]
				var qs QueryStats
				var err error
				if i%2 == 0 {
					_, qs, err = tree.RangeSearchWithStats(q, r)
				} else {
					_, qs, err = tree.KNNWithStats(q, 5)
				}
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if qs.Plan.Mode == "" {
					t.Error("query ran with no plan mode")
					return
				}
			}
		}(g)
	}
	writer.Add(1)
	go func() {
		defer writer.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; i < 40; i++ {
			coords := make([]float64, 6)
			for j := range coords {
				coords[j] = rng.Float64()
			}
			if err := tree.Insert(metric.NewVector(800000+uint64(i), coords)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if i%5 == 0 {
				if _, err := tree.EstimateRange(objs[0], r); err != nil {
					t.Errorf("estimate: %v", err)
					return
				}
			}
		}
	}()
	writer.Wait()
	close(stop)
	readers.Wait()
}
