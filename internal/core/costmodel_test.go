package core

import (
	"math"
	"math/rand"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/sfc"
)

// accuracy is the paper's metric: 1 − |actual − estimated| / actual.
func accuracy(actual, estimated float64) float64 {
	if actual == 0 {
		return 0
	}
	return 1 - math.Abs(actual-estimated)/actual
}

func TestRangeCostModelAccuracy(t *testing.T) {
	objs := vectorSet(2000, 6, 41)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var accEDC, accEPA float64
	const trials = 30
	r := 0.08 * dist.MaxDistance()
	for i := 0; i < trials; i++ {
		q := objs[rng.Intn(len(objs))]
		est, err := tree.EstimateRange(q, r)
		if err != nil {
			t.Fatal(err)
		}
		tree.ResetStats()
		if _, err := tree.RangeQuery(q, r); err != nil {
			t.Fatal(err)
		}
		st := tree.TakeStats()
		accEDC += accuracy(float64(st.DistanceComputations), est.EDC)
		accEPA += accuracy(float64(st.PageAccesses), est.EPA)
	}
	accEDC /= trials
	accEPA /= trials
	// The paper reports >80% average accuracy (Fig. 15); demand a sane floor.
	if accEDC < 0.6 {
		t.Errorf("range EDC accuracy %.2f too low", accEDC)
	}
	if accEPA < 0.5 {
		t.Errorf("range EPA accuracy %.2f too low", accEPA)
	}
}

func TestKNNCostModelAccuracy(t *testing.T) {
	objs := vectorSet(2000, 6, 43)
	dist := metric.L2(6)
	tree, err := Build(objs, Options{
		Distance: dist, Codec: metric.VectorCodec{Dim: 6}, NumPivots: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	var accEDC float64
	var estRadii, actRadii float64
	const trials = 30
	for i := 0; i < trials; i++ {
		q := objs[rng.Intn(len(objs))]
		est, err := tree.EstimateKNN(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		tree.ResetStats()
		res, err := tree.KNN(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		st := tree.TakeStats()
		accEDC += accuracy(float64(st.DistanceComputations), est.EDC)
		estRadii += est.Radius
		actRadii += res[len(res)-1].Dist
	}
	accEDC /= trials
	if accEDC < 0.3 {
		t.Errorf("kNN EDC accuracy %.2f too low", accEDC)
	}
	// eND_k should be within a small factor of the real k-NN distance.
	ratio := estRadii / actRadii
	if ratio < 0.3 || ratio > 4 {
		t.Errorf("eND_k estimate off by factor %.2f", ratio)
	}
}

func TestJoinCostModel(t *testing.T) {
	Q := vectorSet(400, 4, 45)
	O := vectorSet(400, 4, 46)
	for i, o := range O {
		o.(*metric.Vector).Id = uint64(10000 + i)
	}
	dist := metric.L2(4)
	tq, to := buildJoinPair(t, Q, O, dist, metric.VectorCodec{Dim: 4}, 3)
	eps := 0.06 * dist.MaxDistance()
	est, err := EstimateJoin(tq, to, eps)
	if err != nil {
		t.Fatal(err)
	}
	tq.ResetStats()
	to.ResetStats()
	if _, err := Join(tq, to, eps); err != nil {
		t.Fatal(err)
	}
	actualCD := float64(tq.TakeStats().DistanceComputations + to.TakeStats().DistanceComputations)
	actualPA := float64(tq.idxCache.Stats().Accesses() + to.idxCache.Stats().Accesses() +
		tq.dataCache.Stats().Accesses() + to.dataCache.Stats().Accesses())
	if a := accuracy(actualCD, est.EDC); a < 0.4 {
		t.Errorf("join EDC accuracy %.2f (actual %v est %v)", a, actualCD, est.EDC)
	}
	if a := accuracy(actualPA, est.EPA); a < 0.4 {
		t.Errorf("join EPA accuracy %.2f (actual %v est %v)", a, actualPA, est.EPA)
	}
}

func TestEstimateMonotoneInRadius(t *testing.T) {
	objs := vectorSet(800, 5, 47)
	dist := metric.L2(5)
	tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := objs[0]
	prev := -1.0
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		est, err := tree.EstimateRange(q, frac*dist.MaxDistance())
		if err != nil {
			t.Fatal(err)
		}
		if est.EDC < prev {
			t.Errorf("EDC decreased at r=%v", frac)
		}
		prev = est.EDC
	}
	// At r = d+ the region covers everything: EDC ≈ |P| + |O|.
	est, err := tree.EstimateRange(q, dist.MaxDistance())
	if err != nil {
		t.Fatal(err)
	}
	if est.EDC < float64(len(objs)) {
		t.Errorf("EDC at full radius %v < |O|", est.EDC)
	}
}

func TestEstimateDoesNotPerturbCounters(t *testing.T) {
	objs := vectorSet(300, 4, 48)
	tree, err := Build(objs, Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	tree.ResetStats()
	if _, err := tree.EstimateRange(objs[0], 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.EstimateKNN(objs[0], 4); err != nil {
		t.Fatal(err)
	}
	if st := tree.TakeStats(); st.DistanceComputations != 0 {
		t.Errorf("estimation counted %d distance computations", st.DistanceComputations)
	}
}

func TestEstimateAfterMutationRefreshes(t *testing.T) {
	objs := vectorSet(300, 4, 49)
	tree, err := Build(objs[:200], Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[200:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// The box snapshot is stale; estimation must refresh it, not crash.
	est, err := tree.EstimateRange(objs[0], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.EDC <= 0 {
		t.Errorf("EDC = %v after refresh", est.EDC)
	}
}

func TestMeasureHelper(t *testing.T) {
	objs := vectorSet(200, 4, 50)
	tree, err := Build(objs, Options{Distance: metric.L2(4), Codec: metric.VectorCodec{Dim: 4}, NumPivots: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tree.Measure(func() error {
		_, err := tree.KNN(objs[0], 4)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Elapsed <= 0 || st.PageAccesses == 0 || st.DistanceComputations == 0 {
		t.Errorf("Measure returned %+v", st)
	}
}

func TestStorageBytes(t *testing.T) {
	objs := vectorSet(500, 8, 51)
	tree, err := Build(objs, Options{Distance: metric.L2(8), Codec: metric.VectorCodec{Dim: 8}, NumPivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 500 × 8-dim float64 vectors are ≈ 38 KB of payload; storage must cover
	// payload plus index but stay within a small multiple.
	sb := tree.StorageBytes()
	if sb < 38_000 || sb > 500_000 {
		t.Errorf("StorageBytes = %d", sb)
	}
}

func TestZOrderTreeEndToEnd(t *testing.T) {
	// The Table 4 comparison needs both curves fully working for search.
	objs := vectorSet(400, 5, 52)
	dist := metric.L2(5)
	for _, kind := range []sfc.Kind{sfc.Hilbert, sfc.ZOrder} {
		tree, err := Build(objs, Options{Distance: dist, Codec: metric.VectorCodec{Dim: 5}, NumPivots: 3, Curve: kind})
		if err != nil {
			t.Fatal(err)
		}
		q := objs[7]
		got, err := tree.KNN(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := bfKNNDists(objs, q, 8, dist)
		for i := range got {
			if math.Abs(got[i].Dist-want[i]) > 1e-9 {
				t.Fatalf("%v: dist[%d] = %v, want %v", kind, i, got[i].Dist, want[i])
			}
		}
	}
}
