// Package mtree implements the M-tree of Ciaccia, Patella and Zezula — the
// classic compact-partitioning metric access method and the first baseline
// of the paper's evaluation (Tables 6-7, Figs. 12-13).
//
// An M-tree node holds routing entries ⟨routing object, covering radius,
// distance to parent, child⟩; leaves hold ⟨object, distance to parent⟩.
// Objects are stored inline in the nodes (unlike the SPB-tree's separate
// RAF), which is exactly why its storage footprint and construction I/O are
// larger. Distances to parents enable the standard pruning
// |d(q, parent) − d(parent, o)| > r + r_cov without extra computations.
package mtree

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// Options configures an M-tree.
type Options struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from node pages; required.
	Codec metric.Codec
	// Store backs the tree; nil selects a fresh in-memory store.
	Store page.Store
	// CacheSize is the buffer-cache capacity in pages (default 32; negative
	// disables).
	CacheSize int
	// MinFanout splits aim for at least this many entries per node when the
	// byte budget allows; 0 means 4.
	MinFanout int
	// Seed seeds bulk-load sampling; 0 means 1.
	Seed int64
}

// Tree is a disk-based M-tree.
type Tree struct {
	dist  *metric.Counter
	codec metric.Codec
	store *page.Cache
	rng   *rand.Rand

	rootPage page.ID
	hasRoot  bool
	count    int
	height   int
	minFan   int
}

// entry is the in-memory node entry form. Leaf entries have child == none;
// routing entries carry the covering radius and subtree page.
type entry struct {
	obj     metric.Object
	objLen  int // cached serialized payload length
	dParent float64
	radius  float64
	child   page.ID
	isLeaf  bool
}

type node struct {
	page    page.ID
	leaf    bool
	entries []entry
}

const noPage = ^page.ID(0)

// New creates an empty M-tree.
func New(opts Options) (*Tree, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("mtree: Distance and Codec are required")
	}
	store := opts.Store
	if store == nil {
		store = page.NewMemStore()
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = 32
	}
	if cs < 0 {
		cs = 0
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	minFan := opts.MinFanout
	if minFan == 0 {
		minFan = 4
	}
	return &Tree{
		dist:     metric.NewCounter(opts.Distance),
		codec:    opts.Codec,
		store:    page.NewCache(store, cs),
		rng:      rand.New(rand.NewSource(seed)),
		rootPage: noPage,
		minFan:   minFan,
	}, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// ResetStats zeroes I/O and distance counters and flushes the cache.
func (t *Tree) ResetStats() {
	t.store.Stats().Reset()
	t.dist.Reset()
	t.store.Flush()
}

// TakeStats reads (page accesses, distance computations) since the reset.
func (t *Tree) TakeStats() (pa, compdists int64) {
	return t.store.Stats().Accesses(), t.dist.Count()
}

// StorageBytes returns the tree's page footprint.
func (t *Tree) StorageBytes() int64 {
	return int64(t.store.NumPages()) * page.Size
}

// --- queries ---------------------------------------------------------------

// Result is one search answer.
type Result struct {
	Object metric.Object
	Dist   float64
}

// RangeQuery returns every object within distance r of q.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	if !t.hasRoot || r < 0 {
		return nil, nil
	}
	var out []Result
	err := t.rangeSearch(t.rootPage, q, r, 0, true, &out)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, nil
}

// rangeSearch descends the subtree. dQParent is d(q, parent routing object),
// valid unless atRoot.
func (t *Tree) rangeSearch(pg page.ID, q metric.Object, r float64, dQParent float64, atRoot bool, out *[]Result) error {
	n, err := t.readNode(pg)
	if err != nil {
		return err
	}
	for i := range n.entries {
		e := &n.entries[i]
		// Parent-distance pruning: |d(q,parent) − d(parent,e)| lower-bounds
		// d(q, e.obj).
		if !atRoot && math.Abs(dQParent-e.dParent) > r+e.radius {
			continue
		}
		d := t.dist.Distance(q, e.obj)
		if n.leaf {
			if d <= r {
				*out = append(*out, Result{Object: e.obj, Dist: d})
			}
			continue
		}
		if d <= r+e.radius {
			if err := t.rangeSearch(e.child, q, r, d, false, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// KNN returns the k nearest neighbors of q.
func (t *Tree) KNN(q metric.Object, k int) ([]Result, error) {
	if !t.hasRoot || k <= 0 {
		return nil, nil
	}
	res := &topK{k: k}
	pq := &pqueue{}
	heap.Push(pq, pqItem{dmin: 0, page: t.rootPage, atRoot: true})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(pqItem)
		if item.dmin >= res.bound() {
			break
		}
		n, err := t.readNode(item.page)
		if err != nil {
			return nil, err
		}
		for i := range n.entries {
			e := &n.entries[i]
			if !item.atRoot && math.Abs(item.dParent-e.dParent)-e.radius >= res.bound() {
				continue
			}
			d := t.dist.Distance(q, e.obj)
			if n.leaf {
				res.offer(Result{Object: e.obj, Dist: d})
				continue
			}
			if dmin := math.Max(0, d-e.radius); dmin < res.bound() {
				heap.Push(pq, pqItem{dmin: dmin, page: e.child, dParent: d})
			}
		}
	}
	out := res.items
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID() < out[j].Object.ID()
	})
	return out, nil
}

type pqItem struct {
	dmin    float64
	page    page.ID
	dParent float64
	atRoot  bool
}

type pqueue []pqItem

func (h pqueue) Len() int            { return len(h) }
func (h pqueue) Less(i, j int) bool  { return h[i].dmin < h[j].dmin }
func (h pqueue) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pqueue) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pqueue) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// topK is a bounded max-heap of the best candidates.
type topK struct {
	k     int
	items []Result
}

func (r *topK) bound() float64 {
	if len(r.items) < r.k {
		return math.Inf(1)
	}
	return r.items[0].Dist
}

func (r *topK) offer(x Result) {
	if len(r.items) < r.k {
		r.items = append(r.items, x)
		i := len(r.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if r.items[p].Dist >= r.items[i].Dist {
				break
			}
			r.items[p], r.items[i] = r.items[i], r.items[p]
			i = p
		}
		return
	}
	if x.Dist >= r.items[0].Dist {
		return
	}
	r.items[0] = x
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < len(r.items) && r.items[l].Dist > r.items[big].Dist {
			big = l
		}
		if rr < len(r.items) && r.items[rr].Dist > r.items[big].Dist {
			big = rr
		}
		if big == i {
			break
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}
