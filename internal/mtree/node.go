package mtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"spbtree/internal/page"
)

// On-disk node layout:
//
//	byte 0    flags: bit 0 = leaf
//	bytes 1-2 entry count
//	bytes 3-7 reserved
//	entries   id u64 | objLen u32 | obj bytes | dParent f64
//	          [+ radius f64 + child u32 for routing entries]
const nodeHeader = 8

func leafEntryBytes(objLen int) int    { return 8 + 4 + objLen + 8 }
func routingEntryBytes(objLen int) int { return 8 + 4 + objLen + 8 + 8 + 4 }

func (e *entry) bytes() int {
	if e.isLeaf {
		return leafEntryBytes(e.objLen)
	}
	return routingEntryBytes(e.objLen)
}

func nodeBytes(entries []entry) int {
	n := nodeHeader
	for i := range entries {
		n += entries[i].bytes()
	}
	return n
}

func (t *Tree) writeNode(n *node) error {
	var buf [page.Size]byte
	if n.leaf {
		buf[0] = 1
	}
	if len(n.entries) > 0xFFFF {
		return fmt.Errorf("mtree: node %d entry count %d overflow", n.page, len(n.entries))
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	off := nodeHeader
	for i := range n.entries {
		e := &n.entries[i]
		payload := e.obj.AppendBinary(nil)
		need := e.bytes()
		if off+need > page.Size {
			return fmt.Errorf("mtree: node %d overflows page (%d bytes)", n.page, off+need)
		}
		binary.LittleEndian.PutUint64(buf[off:], e.obj.ID())
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(payload)))
		copy(buf[off+12:], payload)
		p := off + 12 + len(payload)
		binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(e.dParent))
		p += 8
		if !n.leaf {
			binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(e.radius))
			binary.LittleEndian.PutUint32(buf[p+8:], uint32(e.child))
			p += 12
		}
		off = p
	}
	if err := t.store.Write(n.page, buf[:]); err != nil {
		return fmt.Errorf("mtree: write node: %w", err)
	}
	return nil
}

func (t *Tree) readNode(pg page.ID) (*node, error) {
	var buf [page.Size]byte
	if err := t.store.Read(pg, buf[:]); err != nil {
		return nil, fmt.Errorf("mtree: read node: %w", err)
	}
	n := &node{page: pg, leaf: buf[0]&1 != 0}
	cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
	n.entries = make([]entry, cnt)
	off := nodeHeader
	for i := 0; i < cnt; i++ {
		if off+12 > page.Size {
			return nil, fmt.Errorf("mtree: corrupt node %d", pg)
		}
		id := binary.LittleEndian.Uint64(buf[off:])
		objLen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		if objLen < 0 || off+12+objLen+8 > page.Size {
			return nil, fmt.Errorf("mtree: corrupt node %d: objLen %d", pg, objLen)
		}
		obj, err := t.codec.Decode(id, buf[off+12:off+12+objLen])
		if err != nil {
			return nil, fmt.Errorf("mtree: node %d entry %d: %w", pg, i, err)
		}
		e := &n.entries[i]
		e.obj = obj
		e.objLen = objLen
		e.isLeaf = n.leaf
		p := off + 12 + objLen
		e.dParent = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		if !n.leaf {
			if p+12 > page.Size {
				return nil, fmt.Errorf("mtree: corrupt routing entry in node %d", pg)
			}
			e.radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
			e.child = page.ID(binary.LittleEndian.Uint32(buf[p+8:]))
			p += 12
		}
		off = p
	}
	return n, nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	pg, err := t.store.Alloc()
	if err != nil {
		return nil, fmt.Errorf("mtree: alloc: %w", err)
	}
	return &node{page: pg, leaf: leaf}, nil
}
