package mtree

import (
	"fmt"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// Insert adds one object with the classic M-tree insertion: descend into the
// subtree whose covering ball already contains the object (or needs the
// least enlargement), split overflowing nodes with random/farthest promotion
// and generalized-hyperplane partitioning.
func (t *Tree) Insert(o metric.Object) error {
	if !t.hasRoot {
		n, err := t.allocNode(true)
		if err != nil {
			return err
		}
		n.entries = []entry{{obj: o, objLen: len(o.AppendBinary(nil)), isLeaf: true}}
		if err := t.writeNode(n); err != nil {
			return err
		}
		t.rootPage = n.page
		t.hasRoot = true
		t.count = 1
		t.height = 1
		return nil
	}
	split, err := t.insertAt(t.rootPage, o, nil)
	if err != nil {
		return err
	}
	if split != nil {
		root, err := t.allocNode(false)
		if err != nil {
			return err
		}
		root.entries = split
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.rootPage = root.page
		t.height++
	}
	t.count++
	return nil
}

// insertAt inserts o into the subtree rooted at pg, whose routing object in
// the parent is parent (nil at the root). A non-nil return carries the two
// routing entries that replace this subtree after a split; their dParent is
// unset (the caller knows its own routing object).
func (t *Tree) insertAt(pg page.ID, o metric.Object, parent metric.Object) ([]entry, error) {
	n, err := t.readNode(pg)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(o, parent)
		}
		n.entries = append(n.entries, entry{obj: o, objLen: len(o.AppendBinary(nil)), dParent: dp, isLeaf: true})
		if nodeBytes(n.entries) <= page.Size {
			return nil, t.writeNode(n)
		}
		return t.split(n)
	}

	// Choose the subtree: prefer a covering ball (min distance); otherwise
	// minimal radius enlargement.
	bestIdx, bestD := -1, 0.0
	enlargeIdx, enlargeBy, enlargeD := -1, 0.0, 0.0
	for i := range n.entries {
		e := &n.entries[i]
		d := t.dist.Distance(o, e.obj)
		if d <= e.radius {
			if bestIdx < 0 || d < bestD {
				bestIdx, bestD = i, d
			}
			continue
		}
		if enlargeIdx < 0 || d-e.radius < enlargeBy {
			enlargeIdx, enlargeBy, enlargeD = i, d-e.radius, d
		}
	}
	if bestIdx < 0 {
		bestIdx = enlargeIdx
		n.entries[bestIdx].radius = enlargeD
	}
	chosen := &n.entries[bestIdx]
	split, err := t.insertAt(chosen.child, o, chosen.obj)
	if err != nil {
		return nil, err
	}
	if split != nil {
		// Replace the split child's entry with the two promoted entries.
		for i := range split {
			if parent != nil {
				split[i].dParent = t.dist.Distance(split[i].obj, parent)
			}
		}
		n.entries[bestIdx] = split[0]
		n.entries = append(n.entries, split[1])
	}
	if nodeBytes(n.entries) <= page.Size {
		return nil, t.writeNode(n)
	}
	return t.split(n)
}

// split partitions an overflowing node by random/farthest promotion and
// returns the two routing entries for the caller to adopt. The original page
// is reused for the first partition.
func (t *Tree) split(n *node) ([]entry, error) {
	entries := n.entries
	if len(entries) < 2 {
		return nil, fmt.Errorf("mtree: cannot split node %d with %d entries (object exceeds page size?)", n.page, len(entries))
	}
	p1 := t.rng.Intn(len(entries))
	d1s := make([]float64, len(entries))
	p2, far := -1, -1.0
	for i := range entries {
		d1s[i] = t.dist.Distance(entries[i].obj, entries[p1].obj)
		if i != p1 && d1s[i] > far {
			p2, far = i, d1s[i]
		}
	}
	o1, o2 := entries[p1].obj, entries[p2].obj

	left := &node{page: n.page, leaf: n.leaf}
	rightNode, err := t.allocNode(n.leaf)
	if err != nil {
		return nil, err
	}
	var r1, r2 float64
	for i := range entries {
		e := entries[i]
		d2 := t.dist.Distance(e.obj, o2)
		if d1s[i] <= d2 || i == p1 {
			e.dParent = d1s[i]
			cover := d1s[i] + e.radius
			if cover > r1 {
				r1 = cover
			}
			left.entries = append(left.entries, e)
		} else {
			e.dParent = d2
			cover := d2 + e.radius
			if cover > r2 {
				r2 = cover
			}
			rightNode.entries = append(rightNode.entries, e)
		}
	}
	// Guard against a degenerate one-sided partition.
	if len(rightNode.entries) == 0 {
		last := left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		last.dParent = t.dist.Distance(last.obj, o2)
		if cover := last.dParent + last.radius; cover > r2 {
			r2 = cover
		}
		rightNode.entries = append(rightNode.entries, last)
	}
	if err := t.writeNode(left); err != nil {
		return nil, err
	}
	if err := t.writeNode(rightNode); err != nil {
		return nil, err
	}
	return []entry{
		{obj: o1, objLen: len(o1.AppendBinary(nil)), radius: r1, child: left.page},
		{obj: o2, objLen: len(o2.AppendBinary(nil)), radius: r2, child: rightNode.page},
	}, nil
}
