package mtree

import (
	"fmt"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// BulkLoad builds the tree with sampled recursive clustering in the manner
// of Ciaccia and Patella's bulk-loading: sample up to fanout seeds, assign
// every object to its nearest seed (this is where the M-tree's large
// construction compdists of Table 6 come from), and recurse per group.
// Groups are not re-balanced, so subtree heights may differ slightly — a
// known simplification that does not affect search correctness.
func (t *Tree) BulkLoad(objs []metric.Object) error {
	if t.hasRoot {
		return fmt.Errorf("mtree: BulkLoad on non-empty tree")
	}
	if len(objs) == 0 {
		return nil
	}
	pg, _, height, err := t.bulkBuild(objs, nil, 0)
	if err != nil {
		return err
	}
	t.rootPage = pg
	t.hasRoot = true
	t.count = len(objs)
	t.height = height
	return nil
}

// bulkBuild builds a subtree over objs whose parent routing object is parent
// (nil at the root). It returns the subtree's page, its covering radius
// w.r.t. parent, and its height.
func (t *Tree) bulkBuild(objs []metric.Object, parent metric.Object, depth int) (page.ID, float64, int, error) {
	if depth > 64 {
		return 0, 0, 0, fmt.Errorf("mtree: bulk-load recursion too deep (degenerate data?)")
	}
	if t.leafFits(objs) {
		n, err := t.allocNode(true)
		if err != nil {
			return 0, 0, 0, err
		}
		var radius float64
		n.entries = make([]entry, len(objs))
		for i, o := range objs {
			var dp float64
			if parent != nil {
				dp = t.dist.Distance(o, parent)
			}
			if dp > radius {
				radius = dp
			}
			n.entries[i] = entry{obj: o, objLen: len(o.AppendBinary(nil)), dParent: dp, isLeaf: true}
		}
		if err := t.writeNode(n); err != nil {
			return 0, 0, 0, err
		}
		return n.page, radius, 1, nil
	}

	f := t.fanoutEstimate(objs)
	seeds := t.sampleDistinct(objs, f)
	groups := make([][]metric.Object, len(seeds))
	// Assign each object to its nearest seed.
	for _, o := range objs {
		best, bd := 0, t.dist.Distance(o, seeds[0])
		for s := 1; s < len(seeds); s++ {
			if d := t.dist.Distance(o, seeds[s]); d < bd {
				best, bd = s, d
			}
		}
		groups[best] = append(groups[best], o)
	}
	// Degenerate clustering (duplicate-heavy data): fall back to arbitrary
	// chunking so recursion always shrinks, using each chunk's first object
	// as its routing seed.
	for gi := range groups {
		if len(groups[gi]) == len(objs) {
			groups = chunk(objs, len(seeds))
			seeds = make([]metric.Object, len(groups))
			for ci, g := range groups {
				seeds[ci] = g[0]
			}
			break
		}
	}

	var radius float64
	maxH := 0
	var rents []entry
	for gi, group := range groups {
		if len(group) == 0 {
			continue
		}
		seed := seeds[gi]
		childPg, childRad, h, err := t.bulkBuild(group, seed, depth+1)
		if err != nil {
			return 0, 0, 0, err
		}
		if h > maxH {
			maxH = h
		}
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(seed, parent)
		}
		if cover := dp + childRad; cover > radius {
			radius = cover
		}
		rents = append(rents, entry{
			obj: seed, objLen: len(seed.AppendBinary(nil)),
			dParent: dp, radius: childRad, child: childPg,
		})
	}
	pg, extraLevels, err := t.packEntries(rents, parent)
	if err != nil {
		return 0, 0, 0, err
	}
	return pg, radius, maxH + 1 + extraLevels, nil
}

// packEntries writes routing entries into one internal node, or — when
// variable-size routing objects exceed the page budget the fan-out estimate
// assumed — spills them into several nodes under a fresh internal level,
// recomputing parent distances for the interposed routing objects.
func (t *Tree) packEntries(rents []entry, parent metric.Object) (page.ID, int, error) {
	if nodeBytes(rents) <= page.Size || len(rents) < 2 {
		n, err := t.allocNode(false)
		if err != nil {
			return 0, 0, err
		}
		n.entries = rents
		if err := t.writeNode(n); err != nil {
			return 0, 0, err
		}
		return n.page, 0, nil
	}
	var supers []entry
	start := 0
	for start < len(rents) {
		end := start + 1
		size := nodeHeader + rents[start].bytes()
		for end < len(rents) {
			next := rents[end].bytes()
			if size+next > page.Size {
				break
			}
			size += next
			end++
		}
		chunk := make([]entry, end-start)
		copy(chunk, rents[start:end])
		start = end

		pivotObj := chunk[0].obj
		var radius float64
		for i := range chunk {
			d := t.dist.Distance(chunk[i].obj, pivotObj)
			chunk[i].dParent = d
			if cover := d + chunk[i].radius; cover > radius {
				radius = cover
			}
		}
		n, err := t.allocNode(false)
		if err != nil {
			return 0, 0, err
		}
		n.entries = chunk
		if err := t.writeNode(n); err != nil {
			return 0, 0, err
		}
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(pivotObj, parent)
		}
		supers = append(supers, entry{
			obj: pivotObj, objLen: len(pivotObj.AppendBinary(nil)),
			dParent: dp, radius: radius, child: n.page,
		})
	}
	if len(supers) >= len(rents) {
		return 0, 0, fmt.Errorf("mtree: routing entries too large to pack (objects near page size?)")
	}
	pg, extra, err := t.packEntries(supers, parent)
	return pg, extra + 1, err
}

// leafFits reports whether objs serialize into a single leaf page.
func (t *Tree) leafFits(objs []metric.Object) bool {
	n := nodeHeader
	for _, o := range objs {
		n += leafEntryBytes(len(o.AppendBinary(nil)))
		if n > page.Size {
			return false
		}
	}
	return true
}

// fanoutEstimate picks the clustering arity from the average object size.
func (t *Tree) fanoutEstimate(objs []metric.Object) int {
	sampleN := len(objs)
	if sampleN > 32 {
		sampleN = 32
	}
	total := 0
	for i := 0; i < sampleN; i++ {
		total += len(objs[i].AppendBinary(nil))
	}
	avg := total/sampleN + 1
	f := (page.Size - nodeHeader) / routingEntryBytes(avg)
	if f < 2 {
		f = 2
	}
	if f > 64 {
		f = 64
	}
	if f > len(objs) {
		f = len(objs)
	}
	return f
}

// sampleDistinct draws up to k objects without replacement.
func (t *Tree) sampleDistinct(objs []metric.Object, k int) []metric.Object {
	idx := t.rng.Perm(len(objs))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]metric.Object, k)
	for i := 0; i < k; i++ {
		out[i] = objs[idx[i]]
	}
	return out
}

func chunk(objs []metric.Object, k int) [][]metric.Object {
	if k < 2 {
		k = 2
	}
	size := (len(objs) + k - 1) / k
	var out [][]metric.Object
	for i := 0; i < len(objs); i += size {
		end := i + size
		if end > len(objs) {
			end = len(objs)
		}
		out = append(out, objs[i:end])
	}
	return out
}
