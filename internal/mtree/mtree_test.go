package mtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

func vectors(n, dim int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return objs
}

func words(n int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	syl := []string{"an", "ber", "co", "du", "el", "fi", "gor", "hu", "in", "jo"}
	objs := make([]metric.Object, n)
	for i := range objs {
		var w string
		for k := 0; k < 2+rng.Intn(4); k++ {
			w += syl[rng.Intn(len(syl))]
		}
		objs[i] = metric.NewStr(uint64(i), w)
	}
	return objs
}

func bfRange(objs []metric.Object, q metric.Object, r float64, d metric.DistanceFunc) map[uint64]bool {
	out := map[uint64]bool{}
	for _, o := range objs {
		if d.Distance(q, o) <= r {
			out[o.ID()] = true
		}
	}
	return out
}

func bfKNN(objs []metric.Object, q metric.Object, k int, d metric.DistanceFunc) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = d.Distance(q, o)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func buildBulk(t *testing.T, objs []metric.Object, dist metric.DistanceFunc, codec metric.Codec) *Tree {
	t.Helper()
	tr, err := New(Options{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBulkLoadRangeMatchesBruteForce(t *testing.T) {
	objs := vectors(800, 6, 1)
	dist := metric.L2(6)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 6})
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.1 + 0.3*rng.Float64()
		got, err := tr.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, q, r, dist)
		if len(got) != len(want) {
			t.Fatalf("trial %d (r=%v): got %d, want %d", trial, r, len(got), len(want))
		}
		for _, res := range got {
			if !want[res.Object.ID()] {
				t.Fatalf("spurious result %d", res.Object.ID())
			}
		}
	}
}

func TestBulkLoadKNNMatchesBruteForce(t *testing.T) {
	objs := vectors(600, 5, 3)
	dist := metric.L2(5)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 5})
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 8, 32} {
		for trial := 0; trial < 8; trial++ {
			q := objs[rng.Intn(len(objs))]
			got, err := tr.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bfKNN(objs, q, k, dist)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results", k, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("k=%d dist[%d] = %v, want %v", k, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestInsertOnlyTreeMatchesBruteForce(t *testing.T) {
	objs := words(400, 5)
	dist := metric.EditDistance{MaxLen: 24}
	tr, err := New(Options{Distance: dist, Codec: metric.StrCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 400 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := float64(1 + rng.Intn(3))
		got, err := tr.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, q, r, dist)
		if len(got) != len(want) {
			t.Fatalf("r=%v: got %d, want %d", r, len(got), len(want))
		}
	}
	// kNN on the insert-built tree too.
	got, err := tr.KNN(objs[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	want := bfKNN(objs, objs[0], 5, dist)
	for i := range got {
		if got[i].Dist != want[i] {
			t.Fatalf("kNN dist[%d] = %v, want %v", i, got[i].Dist, want[i])
		}
	}
}

func TestMixedBulkThenInsert(t *testing.T) {
	objs := vectors(500, 4, 7)
	dist := metric.L2(4)
	tr := buildBulk(t, objs[:300], dist, metric.VectorCodec{Dim: 4})
	for _, o := range objs[300:] {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		q := objs[rng.Intn(len(objs))]
		got, err := tr.RangeQuery(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want := bfRange(objs, q, 0.3, dist)
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
	}
}

func TestPruningSavesDistanceComputations(t *testing.T) {
	objs := vectors(2000, 8, 9)
	dist := metric.L2(8)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 8})
	tr.ResetStats()
	if _, err := tr.KNN(objs[0], 4); err != nil {
		t.Fatal(err)
	}
	_, cd := tr.TakeStats()
	if cd >= int64(len(objs)) {
		t.Errorf("kNN compdists %d >= |O|: no pruning", cd)
	}
	if cd == 0 {
		t.Error("no distance computations counted")
	}
}

func TestStatsAndStorage(t *testing.T) {
	objs := vectors(300, 6, 10)
	tr := buildBulk(t, objs, metric.L2(6), metric.VectorCodec{Dim: 6})
	tr.ResetStats()
	if _, err := tr.RangeQuery(objs[0], 0.2); err != nil {
		t.Fatal(err)
	}
	pa, cd := tr.TakeStats()
	if pa == 0 || cd == 0 {
		t.Errorf("stats pa=%d cd=%d", pa, cd)
	}
	if tr.StorageBytes() < int64(300*6*8) {
		t.Errorf("storage %d below raw payload", tr.StorageBytes())
	}
}

func TestDegenerateDuplicates(t *testing.T) {
	// Many identical objects must not break clustering or splits.
	objs := make([]metric.Object, 300)
	for i := range objs {
		objs[i] = metric.NewVector(uint64(i), []float64{0.5, 0.5})
	}
	dist := metric.L2(2)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 2})
	got, err := tr.RangeQuery(objs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("duplicates: got %d of 300", len(got))
	}
}

func TestEmptyAndValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing options accepted")
	}
	tr, err := New(Options{Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tr.RangeQuery(metric.NewVector(0, []float64{0, 0}), 1); err != nil || res != nil {
		t.Errorf("query on empty tree: %v %v", res, err)
	}
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(metric.NewVector(0, []float64{0, 0})); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(vectors(5, 2, 1)); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
}

func TestFileStoreBacked(t *testing.T) {
	fs, err := page.NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	objs := vectors(400, 4, 11)
	dist := metric.L2(4)
	tr, err := New(Options{Distance: dist, Codec: metric.VectorCodec{Dim: 4}, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	got, err := tr.RangeQuery(objs[0], 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := bfRange(objs, objs[0], 0.25, dist)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}
