package bptree

import "sort"

// Cursor iterates leaf entries in ascending (key, val) order, following the
// leaf chain. The similarity-join algorithm's merge pass is built on it.
type Cursor struct {
	t    *Tree
	node *node
	idx  int
	err  error
}

// SeekFirst positions a cursor at the smallest entry.
func (t *Tree) SeekFirst() *Cursor {
	return t.seek(Pair{}, true)
}

// Seek positions a cursor at the first entry with Key >= key.
func (t *Tree) Seek(key uint64) *Cursor {
	return t.seek(Pair{Key: key}, false)
}

func (t *Tree) seek(e Pair, first bool) *Cursor {
	c := &Cursor{t: t}
	if t.root.page == invalidPage {
		return c
	}
	ref := t.root
	for {
		n, err := t.readNode(ref.page)
		if err != nil {
			c.err = err
			return c
		}
		if n.leaf {
			c.node = n
			if first {
				c.idx = 0
			} else {
				c.idx = sort.Search(len(n.leafEntries), func(i int) bool { return !n.leafEntries[i].Less(e) })
			}
			c.skipExhausted()
			return c
		}
		if first {
			ref = n.children[0]
		} else {
			ref = n.children[childIndex(n.children, e)]
		}
	}
}

// skipExhausted advances past empty tails onto the next leaf if needed.
func (c *Cursor) skipExhausted() {
	for c.node != nil && c.idx >= len(c.node.leafEntries) {
		if c.node.next == invalidPage {
			c.node = nil
			return
		}
		n, err := c.t.readNode(c.node.next)
		if err != nil {
			c.err = err
			c.node = nil
			return
		}
		c.node = n
		c.idx = 0
	}
}

// Valid reports whether the cursor is positioned on an entry.
func (c *Cursor) Valid() bool { return c.node != nil && c.err == nil }

// Key returns the current entry's key. The cursor must be Valid.
func (c *Cursor) Key() uint64 { return c.node.leafEntries[c.idx].Key }

// Val returns the current entry's value. The cursor must be Valid.
func (c *Cursor) Val() uint64 { return c.node.leafEntries[c.idx].Val }

// Next advances to the following entry, crossing leaves as needed.
func (c *Cursor) Next() {
	if !c.Valid() {
		return
	}
	c.idx++
	c.skipExhausted()
}

// Err returns the first I/O error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }
