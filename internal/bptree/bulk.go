package bptree

import "fmt"

// BulkLoad builds the tree from entries sorted ascending by (Key, Val). It
// packs leaves fully (the last two leaves are balanced so no node is
// underfull) and builds upper levels bottom-up, which is the construction
// path the paper credits for the SPB-tree's low build cost. The tree must be
// empty.
func (t *Tree) BulkLoad(entries []Pair) error {
	if t.root.page != invalidPage {
		return fmt.Errorf("bptree: BulkLoad on non-empty tree")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Less(entries[i-1]) {
			return fmt.Errorf("bptree: BulkLoad input not sorted at %d", i)
		}
	}
	if len(entries) == 0 {
		return nil
	}

	// Partition into leaf chunks.
	chunks := chunkSizes(len(entries), t.maxLeaf, t.minLeaf())
	leaves := make([]*node, len(chunks))
	for i := range leaves {
		n, err := t.allocNode(true)
		if err != nil {
			return err
		}
		leaves[i] = n
	}
	refs := make([]child, len(chunks))
	off := 0
	for i, sz := range chunks {
		n := leaves[i]
		n.leafEntries = append(n.leafEntries, entries[off:off+sz]...)
		off += sz
		if i+1 < len(leaves) {
			n.next = leaves[i+1].page
		}
		if err := t.writeNode(n); err != nil {
			return err
		}
		refs[i] = child{page: n.page}
		t.refresh(&refs[i], n)
	}
	t.nLeaves = len(leaves)
	t.count = len(entries)
	t.height = 1

	// Build internal levels until a single root remains.
	for len(refs) > 1 {
		sizes := chunkSizes(len(refs), t.maxInternal, t.minInternal())
		next := make([]child, len(sizes))
		off := 0
		for i, sz := range sizes {
			n, err := t.allocNode(false)
			if err != nil {
				return err
			}
			n.children = append(n.children, refs[off:off+sz]...)
			off += sz
			if err := t.writeNode(n); err != nil {
				return err
			}
			next[i] = child{page: n.page}
			t.refresh(&next[i], n)
		}
		refs = next
		t.height++
	}
	t.root = refs[0]
	return nil
}

// chunkSizes splits n items into chunks of at most max items where every
// chunk except a lone single chunk has at least min items: the final two
// chunks are balanced when the remainder would fall short.
func chunkSizes(n, max, min int) []int {
	if n <= max {
		return []int{n}
	}
	full := n / max
	rem := n % max
	sizes := make([]int, 0, full+1)
	for i := 0; i < full; i++ {
		sizes = append(sizes, max)
	}
	if rem > 0 {
		if rem < min {
			// Steal from the previous full chunk to lift the tail above the
			// occupancy floor.
			steal := min - rem
			sizes[len(sizes)-1] -= steal
			rem += steal
		}
		sizes = append(sizes, rem)
	}
	return sizes
}
