package bptree

import "sort"

// Delete removes the entry (key, val). It returns ErrNotFound if no such
// entry exists. Underfull nodes are rebalanced by borrowing from or merging
// with an adjacent sibling; freed pages are not recycled (the store has no
// free list), matching the simple manipulation profile of the paper's
// Appendix C.
func (t *Tree) Delete(key, val uint64) error {
	if t.root.page == invalidPage {
		return ErrNotFound
	}
	e := Pair{Key: key, Val: val}
	found, rootNode, err := t.deleteFrom(&t.root, e)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	t.count--
	// Collapse the root: an internal root with a single child is replaced by
	// that child; an empty leaf root empties the tree. Collapsed pages are
	// released for reuse.
	for !rootNode.leaf && len(rootNode.children) == 1 {
		t.releaseNode(rootNode.page)
		t.root = rootNode.children[0]
		t.height--
		rootNode, err = t.readNode(t.root.page)
		if err != nil {
			return err
		}
	}
	if rootNode.leaf && len(rootNode.leafEntries) == 0 {
		t.releaseNode(rootNode.page)
		t.root = child{page: invalidPage}
		t.height = 0
		t.nLeaves = 0
	}
	return nil
}

func (t *Tree) minLeaf() int     { return t.maxLeaf / 2 }
func (t *Tree) minInternal() int { return t.maxInternal / 2 }

// deleteFrom removes e from the subtree referenced by c. It returns whether
// the entry was found and the (already written) in-memory node of c, so the
// caller can rebalance it against a sibling without re-reading the page.
func (t *Tree) deleteFrom(c *child, e Pair) (bool, *node, error) {
	n, err := t.readNode(c.page)
	if err != nil {
		return false, nil, err
	}
	if n.leaf {
		pos := sort.Search(len(n.leafEntries), func(i int) bool { return !n.leafEntries[i].Less(e) })
		if pos >= len(n.leafEntries) || n.leafEntries[pos] != e {
			return false, n, nil
		}
		n.leafEntries = append(n.leafEntries[:pos], n.leafEntries[pos+1:]...)
		if err := t.writeNode(n); err != nil {
			return false, nil, err
		}
		t.refresh(c, n)
		return true, n, nil
	}

	idx := childIndex(n.children, e)
	found, childNode, err := t.deleteFrom(&n.children[idx], e)
	if err != nil {
		return false, nil, err
	}
	if !found {
		return false, n, nil
	}
	if t.underfull(childNode) {
		if err := t.rebalance(n, idx, childNode); err != nil {
			return false, nil, err
		}
	}
	if err := t.writeNode(n); err != nil {
		return false, nil, err
	}
	t.refresh(c, n)
	return true, n, nil
}

func (t *Tree) underfull(n *node) bool {
	if n.leaf {
		return len(n.leafEntries) < t.minLeaf()
	}
	return len(n.children) < t.minInternal()
}

// size returns the entry count of a node regardless of kind.
func size(n *node) int {
	if n.leaf {
		return len(n.leafEntries)
	}
	return len(n.children)
}

// rebalance fixes the underfull child at parent.children[idx] (whose node is
// cur) by borrowing from or merging with an adjacent sibling. The parent's
// child slice is updated in place; the parent itself is written by the
// caller.
func (t *Tree) rebalance(parent *node, idx int, cur *node) error {
	// Prefer the right sibling; fall back to the left.
	sibIdx := idx + 1
	if sibIdx >= len(parent.children) {
		sibIdx = idx - 1
	}
	if sibIdx < 0 {
		return nil // single-child parent: nothing to do, root collapse handles it
	}
	sib, err := t.readNode(parent.children[sibIdx].page)
	if err != nil {
		return err
	}
	left, right, leftIdx := cur, sib, idx
	if sibIdx < idx {
		left, right, leftIdx = sib, cur, sibIdx
	}

	if size(sib) > t.minSize(sib) {
		// Borrow one entry across the boundary.
		if left.leaf {
			if size(left) < size(right) {
				left.leafEntries = append(left.leafEntries, right.leafEntries[0])
				right.leafEntries = right.leafEntries[1:]
			} else {
				last := left.leafEntries[len(left.leafEntries)-1]
				left.leafEntries = left.leafEntries[:len(left.leafEntries)-1]
				right.leafEntries = append([]Pair{last}, right.leafEntries...)
			}
		} else {
			if size(left) < size(right) {
				left.children = append(left.children, right.children[0])
				right.children = right.children[1:]
			} else {
				last := left.children[len(left.children)-1]
				left.children = left.children[:len(left.children)-1]
				right.children = append([]child{last}, right.children...)
			}
		}
		if err := t.writeNode(left); err != nil {
			return err
		}
		if err := t.writeNode(right); err != nil {
			return err
		}
		t.refresh(&parent.children[leftIdx], left)
		t.refresh(&parent.children[leftIdx+1], right)
		return nil
	}

	// Merge right into left, drop right's parent entry and release its page.
	if left.leaf {
		left.leafEntries = append(left.leafEntries, right.leafEntries...)
		left.next = right.next
		t.nLeaves--
	} else {
		left.children = append(left.children, right.children...)
	}
	if err := t.writeNode(left); err != nil {
		return err
	}
	t.releaseNode(right.page)
	t.refresh(&parent.children[leftIdx], left)
	parent.children = append(parent.children[:leftIdx+1], parent.children[leftIdx+2:]...)
	return nil
}

func (t *Tree) minSize(n *node) int {
	if n.leaf {
		return t.minLeaf()
	}
	return t.minInternal()
}
