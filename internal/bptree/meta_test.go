package bptree

import (
	"testing"

	"spbtree/internal/page"
)

func TestMetaRoundTrip(t *testing.T) {
	store := page.NewMemStore()
	tr, err := New(store, Options{MaxLeaf: 4, MaxInternal: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Insert(uint64(i*3), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	meta := tr.Meta()

	re, err := Open(store, Options{}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 200 || re.Height() != tr.Height() || re.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("reopened: len=%d h=%d leaves=%d", re.Len(), re.Height(), re.NumLeaves())
	}
	if re.maxLeaf != 4 || re.maxInternal != 4 {
		t.Fatalf("fan-outs not restored: %d/%d", re.maxLeaf, re.maxInternal)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mutations continue after reopening.
	if err := re.Insert(1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := re.Delete(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	i := 0
	for c := re.SeekFirst(); c.Valid(); c.Next() {
		i++
	}
	if i != 200 {
		t.Fatalf("scan after reopen: %d entries", i)
	}
}

func TestMetaEmptyTree(t *testing.T) {
	store := page.NewMemStore()
	tr, err := New(store, Options{MaxLeaf: 4, MaxInternal: 4})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(store, Options{}, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Root(); ok {
		t.Error("reopened empty tree has a root")
	}
	if err := re.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Error("insert after reopening empty tree failed")
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	store := page.NewMemStore()
	if _, err := Open(store, Options{}, nil); err == nil {
		t.Error("nil meta accepted")
	}
	if _, err := Open(store, Options{}, make([]byte, metaFixed)); err == nil {
		t.Error("zero-version meta accepted")
	}
	// A meta pointing at a page beyond the store.
	tr, err := New(page.NewMemStore(), Options{MaxLeaf: 4, MaxInternal: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(page.NewMemStore(), Options{}, tr.Meta()); err == nil {
		t.Error("meta with dangling root accepted")
	}
}

func TestFreeListRecyclesPages(t *testing.T) {
	store := page.NewMemStore()
	tr, err := New(store, Options{MaxLeaf: 4, MaxInternal: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Grow, shrink to empty, grow again: the second growth must reuse the
	// released pages rather than extend the store.
	for i := 0; i < 300; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesAfterFirst := store.NumPages()
	for i := 0; i < 300; i++ {
		if err := tr.Delete(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.FreePages() == 0 {
		t.Fatal("no pages released after deleting everything")
	}
	for i := 0; i < 300; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	grown := store.NumPages() - pagesAfterFirst
	if grown > pagesAfterFirst/4 {
		t.Errorf("store grew by %d pages (from %d) despite the free list", grown, pagesAfterFirst)
	}
	// Free list survives the meta round trip.
	for i := 0; i < 150; i++ {
		if err := tr.Delete(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(store, Options{}, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if re.FreePages() != tr.FreePages() {
		t.Errorf("reopened free pages %d, want %d", re.FreePages(), tr.FreePages())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
