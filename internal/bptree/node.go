package bptree

import (
	"encoding/binary"
	"fmt"

	"spbtree/internal/obs"
	"spbtree/internal/page"
)

// On-disk node layout (page.Size bytes):
//
//	byte 0     flags: bit 0 = leaf
//	bytes 1-2  entry count (uint16, little endian)
//	bytes 3-6  next leaf page (uint32; 0xFFFFFFFF = none)
//	byte 7     reserved
//	bytes 8-   entries
//
// Leaf entry (16 bytes):    key u64 | val u64
// Internal entry (36 bytes): minKey u64 | minVal u64 | page u32 | boxLo u64 | boxHi u64
const (
	headerSize        = 8
	leafEntrySize     = 16
	internalEntrySize = 36

	maxLeafCap = (page.Size - headerSize) / leafEntrySize
)

// maxInternalCap returns the page-capacity internal fan-out. The box corners
// are fixed-width SFC keys, so capacity does not depend on dimensionality.
func maxInternalCap(dims int) int {
	return (page.Size - headerSize) / internalEntrySize
}

func (t *Tree) readNode(id page.ID) (*node, error) {
	var buf [page.Size]byte
	if err := t.store.Read(id, buf[:]); err != nil {
		return nil, fmt.Errorf("bptree: read node: %w", err)
	}
	if t.tracer != nil {
		t.tracer.Event(obs.Event{Kind: obs.EvNodeRead, Src: obs.SrcIndex, Page: uint32(id)})
	}
	n := &node{page: id}
	n.leaf = buf[0]&1 != 0
	cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
	n.next = page.ID(binary.LittleEndian.Uint32(buf[3:7]))
	off := headerSize
	if n.leaf {
		if cnt > maxLeafCap {
			return nil, fmt.Errorf("bptree: corrupt leaf %d: count %d", id, cnt)
		}
		n.leafEntries = make([]Pair, cnt)
		for i := range n.leafEntries {
			n.leafEntries[i].Key = binary.LittleEndian.Uint64(buf[off:])
			n.leafEntries[i].Val = binary.LittleEndian.Uint64(buf[off+8:])
			off += leafEntrySize
		}
	} else {
		if cnt > maxInternalCap(t.dims) {
			return nil, fmt.Errorf("bptree: corrupt internal node %d: count %d", id, cnt)
		}
		n.children = make([]child, cnt)
		for i := range n.children {
			c := &n.children[i]
			c.min.Key = binary.LittleEndian.Uint64(buf[off:])
			c.min.Val = binary.LittleEndian.Uint64(buf[off+8:])
			c.page = page.ID(binary.LittleEndian.Uint32(buf[off+16:]))
			c.boxLo = binary.LittleEndian.Uint64(buf[off+20:])
			c.boxHi = binary.LittleEndian.Uint64(buf[off+28:])
			off += internalEntrySize
		}
	}
	return n, nil
}

func (t *Tree) writeNode(n *node) error {
	var buf [page.Size]byte
	if n.leaf {
		buf[0] = 1
		if len(n.leafEntries) > maxLeafCap {
			return fmt.Errorf("bptree: leaf overflow: %d entries", len(n.leafEntries))
		}
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.leafEntries)))
		binary.LittleEndian.PutUint32(buf[3:7], uint32(n.next))
		off := headerSize
		for _, e := range n.leafEntries {
			binary.LittleEndian.PutUint64(buf[off:], e.Key)
			binary.LittleEndian.PutUint64(buf[off+8:], e.Val)
			off += leafEntrySize
		}
	} else {
		if len(n.children) > maxInternalCap(t.dims) {
			return fmt.Errorf("bptree: internal overflow: %d children", len(n.children))
		}
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.children)))
		binary.LittleEndian.PutUint32(buf[3:7], uint32(invalidPage))
		off := headerSize
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(buf[off:], c.min.Key)
			binary.LittleEndian.PutUint64(buf[off+8:], c.min.Val)
			binary.LittleEndian.PutUint32(buf[off+16:], uint32(c.page))
			binary.LittleEndian.PutUint64(buf[off+20:], c.boxLo)
			binary.LittleEndian.PutUint64(buf[off+28:], c.boxHi)
			off += internalEntrySize
		}
	}
	if err := t.store.Write(n.page, buf[:]); err != nil {
		return fmt.Errorf("bptree: write node: %w", err)
	}
	return nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return &node{page: id, leaf: leaf, next: invalidPage}, nil
	}
	id, err := t.store.Alloc()
	if err != nil {
		return nil, fmt.Errorf("bptree: alloc node: %w", err)
	}
	return &node{page: id, leaf: leaf, next: invalidPage}, nil
}

// releaseNode returns a page to the free list for reuse.
func (t *Tree) releaseNode(id page.ID) {
	t.free = append(t.free, id)
}

// box computes the node's MBB as SFC corner encodings.
func (t *Tree) box(n *node) (uint64, uint64) {
	if n.leaf {
		return t.leafBox(n.leafEntries)
	}
	return t.unionBox(n.children)
}

// leafBox computes a leaf MBB from its keys.
func (t *Tree) leafBox(entries []Pair) (uint64, uint64) {
	if len(entries) == 0 {
		return 0, 0
	}
	if t.geo == nil {
		// Entries are ordered, so the key interval is [first, last].
		return entries[0].Key, entries[len(entries)-1].Key
	}
	lo := make([]uint32, t.dims)
	hi := make([]uint32, t.dims)
	p := make([]uint32, t.dims)
	t.geo.Decode(entries[0].Key, p)
	copy(lo, p)
	copy(hi, p)
	for _, e := range entries[1:] {
		t.geo.Decode(e.Key, p)
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return t.geo.Encode(lo), t.geo.Encode(hi)
}

// unionBox computes an internal node MBB as the union of its children's.
func (t *Tree) unionBox(children []child) (uint64, uint64) {
	if len(children) == 0 {
		return 0, 0
	}
	if t.geo == nil {
		lo := children[0].boxLo
		hi := children[0].boxHi
		for _, c := range children[1:] {
			if c.boxLo < lo {
				lo = c.boxLo
			}
			if c.boxHi > hi {
				hi = c.boxHi
			}
		}
		return lo, hi
	}
	lo := make([]uint32, t.dims)
	hi := make([]uint32, t.dims)
	p := make([]uint32, t.dims)
	t.geo.Decode(children[0].boxLo, lo)
	t.geo.Decode(children[0].boxHi, hi)
	for _, c := range children[1:] {
		t.geo.Decode(c.boxLo, p)
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
		}
		t.geo.Decode(c.boxHi, p)
		for i, v := range p {
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return t.geo.Encode(lo), t.geo.Encode(hi)
}

// refresh recomputes a child reference's min pair and box from the node's
// current contents.
func (t *Tree) refresh(c *child, n *node) {
	if n.leaf {
		if len(n.leafEntries) > 0 {
			c.min = n.leafEntries[0]
		}
	} else {
		if len(n.children) > 0 {
			c.min = n.children[0].min
		}
	}
	c.boxLo, c.boxHi = t.box(n)
}
