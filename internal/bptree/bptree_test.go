package bptree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

func newTestTree(t *testing.T, opts Options) *Tree {
	t.Helper()
	tr, err := New(page.NewMemStore(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// smallOpts forces deep trees so splits and merges are exercised heavily.
func smallOpts() Options { return Options{MaxLeaf: 4, MaxInternal: 4} }

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	if _, ok := tr.Root(); ok {
		t.Error("empty tree has a root")
	}
	if tr.Len() != 0 || tr.Height() != 0 || tr.NumLeaves() != 0 {
		t.Error("empty tree has non-zero counters")
	}
	if c := tr.SeekFirst(); c.Valid() {
		t.Error("cursor valid on empty tree")
	}
	if err := tr.Delete(1, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete on empty = %v", err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndScan(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	rng := rand.New(rand.NewSource(1))
	var want []Pair
	for i := 0; i < 500; i++ {
		e := Pair{Key: uint64(rng.Intn(100)), Val: uint64(i)}
		if err := tr.Insert(e.Key, e.Val); err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("height %d suspiciously small for fan-out 4", tr.Height())
	}
	var got []Pair
	for c := tr.SeekFirst(); c.Valid(); c.Next() {
		got = append(got, Pair{Key: c.Key(), Val: c.Val()})
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSeek(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	for i := 0; i < 100; i++ {
		if err := tr.Insert(uint64(i*10), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		seek, wantKey uint64
		valid         bool
	}{
		{0, 0, true},
		{5, 10, true},
		{10, 10, true},
		{991, 0, false},
		{990, 990, true},
	}
	for _, tc := range cases {
		c := tr.Seek(tc.seek)
		if c.Valid() != tc.valid {
			t.Errorf("Seek(%d).Valid = %v, want %v", tc.seek, c.Valid(), tc.valid)
			continue
		}
		if tc.valid && c.Key() != tc.wantKey {
			t.Errorf("Seek(%d).Key = %d, want %d", tc.seek, c.Key(), tc.wantKey)
		}
	}
}

func TestDeleteEverythingRandomly(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	rng := rand.New(rand.NewSource(2))
	var live []Pair
	for i := 0; i < 400; i++ {
		e := Pair{Key: uint64(rng.Intn(64)), Val: uint64(i)}
		if err := tr.Insert(e.Key, e.Val); err != nil {
			t.Fatal(err)
		}
		live = append(live, e)
	}
	for len(live) > 0 {
		i := rng.Intn(len(live))
		e := live[i]
		live = append(live[:i], live[i+1:]...)
		if err := tr.Delete(e.Key, e.Val); err != nil {
			t.Fatalf("Delete(%v): %v", e, err)
		}
		if rng.Intn(16) == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after deleting %v: %v", e, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	if err := tr.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(5, 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(5,2) = %v, want ErrNotFound", err)
	}
	if err := tr.Delete(6, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(6,1) = %v, want ErrNotFound", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

// TestModelEquivalence runs a random mixed workload against both the tree and
// a reference sorted multiset, comparing full scans after every batch.
func TestModelEquivalence(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	rng := rand.New(rand.NewSource(3))
	model := map[Pair]bool{}
	nextVal := uint64(0)
	for batch := 0; batch < 30; batch++ {
		for op := 0; op < 40; op++ {
			if rng.Intn(3) != 0 || len(model) == 0 {
				e := Pair{Key: uint64(rng.Intn(40)), Val: nextVal}
				nextVal++
				if err := tr.Insert(e.Key, e.Val); err != nil {
					t.Fatal(err)
				}
				model[e] = true
			} else {
				// Delete a random live entry.
				var victim Pair
				k := rng.Intn(len(model))
				for e := range model {
					if k == 0 {
						victim = e
						break
					}
					k--
				}
				if err := tr.Delete(victim.Key, victim.Val); err != nil {
					t.Fatalf("Delete(%v): %v", victim, err)
				}
				delete(model, victim)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		want := make([]Pair, 0, len(model))
		for e := range model {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		var got []Pair
		for c := tr.SeekFirst(); c.Valid(); c.Next() {
			got = append(got, Pair{Key: c.Key(), Val: c.Val()})
		}
		if len(got) != len(want) {
			t.Fatalf("batch %d: scan %d entries, want %d", batch, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch %d: scan[%d] = %v, want %v", batch, i, got[i], want[i])
			}
		}
	}
}

func TestBulkLoad(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 16, 17, 100, 1000} {
		tr := newTestTree(t, smallOpts())
		entries := make([]Pair, n)
		for i := range entries {
			entries[i] = Pair{Key: uint64(i / 3), Val: uint64(i)}
		}
		if err := tr.BulkLoad(entries); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		i := 0
		for c := tr.SeekFirst(); c.Valid(); c.Next() {
			if (Pair{Key: c.Key(), Val: c.Val()}) != entries[i] {
				t.Fatalf("n=%d: scan[%d] mismatch", n, i)
			}
			i++
		}
		if i != n {
			t.Fatalf("n=%d: scan returned %d", n, i)
		}
	}
}

func TestBulkLoadRejectsUnsortedAndNonEmpty(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	if err := tr.BulkLoad([]Pair{{2, 0}, {1, 0}}); err == nil {
		t.Error("unsorted input accepted")
	}
	tr = newTestTree(t, smallOpts())
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad([]Pair{{1, 0}}); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	entries := make([]Pair, 300)
	for i := range entries {
		entries[i] = Pair{Key: uint64(2 * i), Val: uint64(i)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	// Interleave inserts and deletes after a bulk load.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(uint64(2*i+1), uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Delete(uint64(2*i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestGeometryBoxes(t *testing.T) {
	curve := sfc.New(sfc.Hilbert, 2, 4)
	tr := newTestTree(t, Options{Geometry: geoAdapter{curve}, MaxLeaf: 4, MaxInternal: 4})
	rng := rand.New(rand.NewSource(9))
	p := make(sfc.Point, 2)
	for i := 0; i < 200; i++ {
		p[0] = rng.Uint32() % 16
		p[1] = rng.Uint32() % 16
		if err := tr.Insert(curve.Encode(p), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// CheckInvariants recomputes every box via the geometry and compares.
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The root box must contain every inserted point.
	root, _ := tr.Root()
	lo := make(sfc.Point, 2)
	hi := make(sfc.Point, 2)
	curve.Decode(root.BoxLo, lo)
	curve.Decode(root.BoxHi, hi)
	for c := tr.SeekFirst(); c.Valid(); c.Next() {
		curve.Decode(c.Key(), p)
		if !sfc.Contains(lo, hi, p) {
			t.Fatalf("point %v outside root box [%v, %v]", p, lo, hi)
		}
	}
	// Delete half and re-verify boxes shrink consistently.
	var pairs []Pair
	for c := tr.SeekFirst(); c.Valid(); c.Next() {
		pairs = append(pairs, Pair{Key: c.Key(), Val: c.Val()})
	}
	for i := 0; i < len(pairs); i += 2 {
		if err := tr.Delete(pairs[i].Key, pairs[i].Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// geoAdapter adapts sfc.Curve (whose Point type is a named slice) to the
// Geometry interface.
type geoAdapter struct{ c sfc.Curve }

func (g geoAdapter) Dims() int                   { return g.c.Dims() }
func (g geoAdapter) Decode(k uint64, p []uint32) { g.c.Decode(k, sfc.Point(p)) }
func (g geoAdapter) Encode(p []uint32) uint64    { return g.c.Encode(sfc.Point(p)) }

func TestWalk(t *testing.T) {
	tr := newTestTree(t, smallOpts())
	for i := 0; i < 100; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var nodes, leaves int
	maxDepth := 0
	err := tr.Walk(func(depth int, ref NodeRef, n *Node) error {
		nodes++
		if n.Leaf {
			leaves++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if leaves != tr.NumLeaves() {
		t.Errorf("walk saw %d leaves, tree reports %d", leaves, tr.NumLeaves())
	}
	if maxDepth+1 != tr.Height() {
		t.Errorf("walk depth %d, height %d", maxDepth+1, tr.Height())
	}
}

func TestPageCapacityDefaults(t *testing.T) {
	tr, err := New(page.NewMemStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.maxLeaf != maxLeafCap || tr.maxInternal != maxInternalCap(0) {
		t.Errorf("defaults: leaf=%d internal=%d", tr.maxLeaf, tr.maxInternal)
	}
	// A full page of entries must serialize and round trip.
	entries := make([]Pair, maxLeafCap)
	for i := range entries {
		entries[i] = Pair{Key: uint64(i), Val: uint64(i)}
	}
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(page.NewMemStore(), Options{MaxLeaf: 1}); err == nil {
		t.Error("MaxLeaf 1 accepted")
	}
	if _, err := New(page.NewMemStore(), Options{MaxInternal: 2}); err == nil {
		t.Error("MaxInternal 2 accepted")
	}
	if _, err := New(page.NewMemStore(), Options{MaxLeaf: maxLeafCap + 1}); err == nil {
		t.Error("oversized MaxLeaf accepted")
	}
}

func TestIOErrorsSurface(t *testing.T) {
	// Build a healthy tree, then wrap its store in a fault injector and
	// verify every operation reports the error instead of corrupting state.
	mem := page.NewMemStore()
	tr, err := New(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.store = page.NewFaultStore(mem, 0)
	if err := tr.Insert(99, 99); !errors.Is(err, page.ErrInjected) {
		t.Errorf("Insert under fault = %v", err)
	}
	if err := tr.Delete(1, 1); !errors.Is(err, page.ErrInjected) {
		t.Errorf("Delete under fault = %v", err)
	}
	c := tr.SeekFirst()
	if c.Valid() || !errors.Is(c.Err(), page.ErrInjected) {
		t.Errorf("cursor under fault: valid=%v err=%v", c.Valid(), c.Err())
	}
	if _, err := tr.ReadNode(0); !errors.Is(err, page.ErrInjected) {
		t.Errorf("ReadNode under fault = %v", err)
	}
}

func TestFileStoreBackedTree(t *testing.T) {
	fs, err := page.NewTempFileStore()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tr, err := New(fs, Options{MaxLeaf: 8, MaxInternal: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(uint64(i*7%1000), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().Accesses() == 0 {
		t.Error("file store recorded no page accesses")
	}
}

func TestCorruptNodeRejected(t *testing.T) {
	mem := page.NewMemStore()
	tr, err := New(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the leaf page with an absurd count.
	buf := make([]byte, page.Size)
	if err := mem.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	buf[1], buf[2] = 0xFF, 0xFF
	if err := mem.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadNode(0); err == nil {
		t.Error("corrupt node decoded without error")
	}
}
