// Package bptree implements the disk-based B+-tree underlying the SPB-tree:
// a B+-tree over uint64 space-filling-curve keys whose non-leaf entries are
// augmented with minimum bounding boxes (MBBs) of their subtrees, encoded —
// exactly as in the paper's Fig. 4 — as the SFC values of the box's lower and
// upper corner points.
//
// Entries are ordered by the composite pair (key, val); val is the RAF
// pointer of the object and is unique, so duplicate SFC keys (distinct
// objects quantized to the same cell) are totally ordered and insertion and
// deletion stay deterministic.
//
// The tree supports bulk-loading from sorted input, single insert and delete
// with node rebalancing (borrow/merge), ascending leaf-level cursors, and
// direct node access for the search algorithms in internal/core, which
// implement their own traversals over node MBBs.
package bptree

import (
	"errors"
	"fmt"

	"spbtree/internal/obs"
	"spbtree/internal/page"
)

// Geometry decodes SFC keys into grid points and re-encodes box corners; the
// tree uses it to maintain node MBBs. sfc.Curve satisfies Geometry. A nil
// Geometry degrades boxes to raw key intervals [min key, max key], which is
// what plain one-dimensional users (e.g. the M-Index baseline) need.
type Geometry interface {
	// Dims returns the dimensionality of decoded points.
	Dims() int
	// Decode fills p (length Dims) with the grid point of key.
	Decode(key uint64, p []uint32)
	// Encode returns the key of grid point p.
	Encode(p []uint32) uint64
}

// Pair is a composite entry identifier: the SFC key plus the unique value
// (RAF pointer). Pairs order lexicographically.
type Pair struct {
	Key uint64
	Val uint64
}

// Less reports whether p orders strictly before q.
func (p Pair) Less(q Pair) bool {
	if p.Key != q.Key {
		return p.Key < q.Key
	}
	return p.Val < q.Val
}

// invalidPage marks "no page" (e.g. the last leaf's next pointer).
const invalidPage page.ID = ^page.ID(0)

// Options configures a Tree.
type Options struct {
	// Geometry maintains MBBs; nil degrades to key intervals.
	Geometry Geometry
	// MaxLeaf overrides the leaf fan-out (entries per leaf). 0 means the
	// page-capacity maximum. Tests use small values to force deep trees.
	MaxLeaf int
	// MaxInternal overrides the internal fan-out. 0 means the page-capacity
	// maximum.
	MaxInternal int
}

// Tree is a disk-based B+-tree with MBB-augmented non-leaf entries.
type Tree struct {
	store page.Store
	geo   Geometry
	dims  int

	maxLeaf, maxInternal int

	root    child // root reference; root.page == invalidPage when empty
	height  int   // number of levels; 0 when empty
	count   int   // number of entries
	nLeaves int   // number of leaf nodes

	// free holds pages released by node merges and root collapses, reused
	// by later allocations so churn does not grow the store.
	free []page.ID

	// tracer, when non-nil, receives one EvNodeRead per node decoded.
	tracer obs.Tracer
}

// SetTracer installs (or, with nil, removes) a tracer receiving one
// structured EvNodeRead event per node decoded by ReadNode and the internal
// traversals. Not synchronized with in-flight reads: install tracers before
// issuing queries.
func (t *Tree) SetTracer(tr obs.Tracer) { t.tracer = tr }

// FreePages returns how many released pages await reuse.
func (t *Tree) FreePages() int { return len(t.free) }

// child references a node from its parent: the minimum pair of its subtree,
// its page, and its subtree MBB as SFC corner encodings.
type child struct {
	min   Pair
	page  page.ID
	boxLo uint64
	boxHi uint64
}

// New creates an empty tree on store.
func New(store page.Store, opts Options) (*Tree, error) {
	t := &Tree{
		store:       store,
		geo:         opts.Geometry,
		maxLeaf:     opts.MaxLeaf,
		maxInternal: opts.MaxInternal,
		root:        child{page: invalidPage},
	}
	if t.geo != nil {
		t.dims = t.geo.Dims()
	}
	if t.maxLeaf == 0 {
		t.maxLeaf = maxLeafCap
	}
	if t.maxInternal == 0 {
		t.maxInternal = maxInternalCap(t.dims)
	}
	if t.maxLeaf < 2 || t.maxLeaf > maxLeafCap {
		return nil, fmt.Errorf("bptree: MaxLeaf %d out of range [2, %d]", t.maxLeaf, maxLeafCap)
	}
	if t.maxInternal < 3 || t.maxInternal > maxInternalCap(t.dims) {
		return nil, fmt.Errorf("bptree: MaxInternal %d out of range [3, %d]", t.maxInternal, maxInternalCap(t.dims))
	}
	return t, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.count }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// NumLeaves returns the number of leaf nodes, i.e. the |SPB| term of the
// paper's join cost model (eq. 8).
func (t *Tree) NumLeaves() int { return t.nLeaves }

// Root returns the root node reference and whether the tree is non-empty.
func (t *Tree) Root() (NodeRef, bool) {
	if t.root.page == invalidPage {
		return NodeRef{}, false
	}
	return NodeRef{MinKey: t.root.min.Key, MinVal: t.root.min.Val, Page: t.root.page, BoxLo: t.root.boxLo, BoxHi: t.root.boxHi}, true
}

// NodeRef is the public form of a parent-to-child reference, exposed so the
// query algorithms in internal/core can traverse the tree with MBB pruning.
type NodeRef struct {
	// MinKey and MinVal identify the smallest pair in the subtree.
	MinKey, MinVal uint64
	// Page locates the node.
	Page page.ID
	// BoxLo and BoxHi are the SFC encodings of the subtree MBB's lower and
	// upper corner points.
	BoxLo, BoxHi uint64
}

// Node is the decoded form of a tree node.
type Node struct {
	// Leaf reports whether the node is a leaf.
	Leaf bool
	// Next is the following leaf's page, or false via HasNext for the last.
	Next page.ID
	// Keys and Vals hold the entries of a leaf node.
	Keys, Vals []uint64
	// Children holds the child references of a non-leaf node.
	Children []NodeRef
}

// HasNext reports whether a leaf node has a successor leaf.
func (n *Node) HasNext() bool { return n.Next != invalidPage }

// ErrNotFound is returned by Delete when no matching entry exists.
var ErrNotFound = errors.New("bptree: entry not found")

// ReadNode reads and decodes the node on page id (a physical page access
// unless the backing store is a cache with the page resident).
func (t *Tree) ReadNode(id page.ID) (*Node, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	out := &Node{Leaf: n.leaf, Next: n.next}
	if n.leaf {
		out.Keys = append([]uint64(nil), keysOf(n.leafEntries)...)
		out.Vals = append([]uint64(nil), valsOf(n.leafEntries)...)
	} else {
		out.Children = make([]NodeRef, len(n.children))
		for i, c := range n.children {
			out.Children[i] = NodeRef{MinKey: c.min.Key, MinVal: c.min.Val, Page: c.page, BoxLo: c.boxLo, BoxHi: c.boxHi}
		}
	}
	return out, nil
}

func keysOf(es []Pair) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.Key
	}
	return out
}

func valsOf(es []Pair) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.Val
	}
	return out
}

// node is the in-memory working form used by mutation algorithms.
type node struct {
	page        page.ID
	leaf        bool
	next        page.ID
	leafEntries []Pair  // leaf only
	children    []child // internal only
}

// Walk visits every node reference top-down (parents before children),
// calling fn with the node's depth (0 = root) and reference. It reads every
// page; callers wanting a cheap summary should call it once at build time.
func (t *Tree) Walk(fn func(depth int, ref NodeRef, n *Node) error) error {
	root, ok := t.Root()
	if !ok {
		return nil
	}
	return t.walk(0, root, fn)
}

func (t *Tree) walk(depth int, ref NodeRef, fn func(int, NodeRef, *Node) error) error {
	n, err := t.ReadNode(ref.Page)
	if err != nil {
		return err
	}
	if err := fn(depth, ref, n); err != nil {
		return err
	}
	if n.Leaf {
		return nil
	}
	for _, c := range n.Children {
		if err := t.walk(depth+1, c, fn); err != nil {
			return err
		}
	}
	return nil
}
