package bptree

import "fmt"

// CheckInvariants validates the full structural health of the tree: entry
// ordering, parent min-pair and MBB correctness, occupancy bounds, uniform
// leaf depth, and leaf-chain consistency. It reads the whole tree and exists
// for tests; production code never calls it.
func (t *Tree) CheckInvariants() error {
	if t.root.page == invalidPage {
		if t.count != 0 || t.height != 0 || t.nLeaves != 0 {
			return fmt.Errorf("empty tree with count=%d height=%d leaves=%d", t.count, t.height, t.nLeaves)
		}
		return nil
	}
	var (
		entries   int
		leaves    int
		leafDepth = -1
		prevLeaf  *node
		prevPair  *Pair
	)
	var visit func(c child, depth int, isRoot bool) error
	visit = func(c child, depth int, isRoot bool) error {
		n, err := t.readNode(c.page)
		if err != nil {
			return err
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaf %d at depth %d, expected %d", n.page, depth, leafDepth)
			}
			if !isRoot && len(n.leafEntries) < t.minLeaf() {
				return fmt.Errorf("leaf %d underfull: %d < %d", n.page, len(n.leafEntries), t.minLeaf())
			}
			if len(n.leafEntries) > t.maxLeaf {
				return fmt.Errorf("leaf %d overfull: %d > %d", n.page, len(n.leafEntries), t.maxLeaf)
			}
			if len(n.leafEntries) == 0 && !isRoot {
				return fmt.Errorf("leaf %d empty", n.page)
			}
			for i, e := range n.leafEntries {
				if prevPair != nil && e.Less(*prevPair) {
					return fmt.Errorf("leaf %d entry %d out of order", n.page, i)
				}
				p := e
				prevPair = &p
			}
			if len(n.leafEntries) > 0 && n.leafEntries[0] != c.min {
				return fmt.Errorf("leaf %d min %v != parent ref %v", n.page, n.leafEntries[0], c.min)
			}
			wantLo, wantHi := t.leafBox(n.leafEntries)
			if wantLo != c.boxLo || wantHi != c.boxHi {
				return fmt.Errorf("leaf %d box (%d,%d) != parent ref (%d,%d)", n.page, wantLo, wantHi, c.boxLo, c.boxHi)
			}
			if prevLeaf != nil && prevLeaf.next != n.page {
				return fmt.Errorf("leaf chain broken: %d.next=%d, expected %d", prevLeaf.page, prevLeaf.next, n.page)
			}
			prevLeaf = n
			leaves++
			entries += len(n.leafEntries)
			return nil
		}
		if !isRoot && len(n.children) < t.minInternal() {
			return fmt.Errorf("internal %d underfull: %d < %d", n.page, len(n.children), t.minInternal())
		}
		if isRoot && len(n.children) < 2 {
			return fmt.Errorf("internal root %d has %d children", n.page, len(n.children))
		}
		if len(n.children) > t.maxInternal {
			return fmt.Errorf("internal %d overfull: %d > %d", n.page, len(n.children), t.maxInternal)
		}
		if n.children[0].min != c.min {
			return fmt.Errorf("internal %d min %v != parent ref %v", n.page, n.children[0].min, c.min)
		}
		wantLo, wantHi := t.unionBox(n.children)
		if wantLo != c.boxLo || wantHi != c.boxHi {
			return fmt.Errorf("internal %d box (%d,%d) != parent ref (%d,%d)", n.page, wantLo, wantHi, c.boxLo, c.boxHi)
		}
		for i, cc := range n.children {
			if i > 0 && cc.min.Less(n.children[i-1].min) {
				return fmt.Errorf("internal %d children out of order at %d", n.page, i)
			}
			if err := visit(cc, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.root, 0, true); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != invalidPage {
		return fmt.Errorf("last leaf %d has next %d", prevLeaf.page, prevLeaf.next)
	}
	if entries != t.count {
		return fmt.Errorf("count %d != actual %d", t.count, entries)
	}
	if leaves != t.nLeaves {
		return fmt.Errorf("nLeaves %d != actual %d", t.nLeaves, leaves)
	}
	if leafDepth+1 != t.height {
		return fmt.Errorf("height %d != actual %d", t.height, leafDepth+1)
	}
	return nil
}
