package bptree

import (
	"encoding/binary"
	"fmt"

	"spbtree/internal/page"
)

// metaVersion versions the Meta encoding. Version 2 added the free-page
// list.
const metaVersion = 2

// metaFixed is the fixed prefix size: version + root child (min pair, page,
// boxes) + height/count/nLeaves + fan-outs + free-list length.
const metaFixed = 1 + 8 + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4

// Meta returns an opaque snapshot of the tree's bookkeeping (root location,
// counters, fan-outs, free pages). Persist it alongside the page store and
// pass it to Open to reopen the tree.
func (t *Tree) Meta() []byte {
	b := make([]byte, 0, metaFixed+4*len(t.free))
	b = append(b, metaVersion)
	b = binary.LittleEndian.AppendUint64(b, t.root.min.Key)
	b = binary.LittleEndian.AppendUint64(b, t.root.min.Val)
	b = binary.LittleEndian.AppendUint32(b, uint32(t.root.page))
	b = binary.LittleEndian.AppendUint64(b, t.root.boxLo)
	b = binary.LittleEndian.AppendUint64(b, t.root.boxHi)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.height))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.count))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.nLeaves))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.maxLeaf))
	b = binary.LittleEndian.AppendUint32(b, uint32(t.maxInternal))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.free)))
	for _, id := range t.free {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	return b
}

// Open reopens a tree previously persisted to store. The fan-outs come from
// meta (opts.MaxLeaf/MaxInternal are ignored); opts.Geometry must match the
// one the tree was built with.
func Open(store page.Store, opts Options, meta []byte) (*Tree, error) {
	if len(meta) < metaFixed {
		return nil, fmt.Errorf("bptree: meta is %d bytes, want at least %d", len(meta), metaFixed)
	}
	if meta[0] != metaVersion {
		return nil, fmt.Errorf("bptree: meta version %d, want %d", meta[0], metaVersion)
	}
	b := meta[1:]
	opts.MaxLeaf = int(binary.LittleEndian.Uint32(b[60:64]))
	opts.MaxInternal = int(binary.LittleEndian.Uint32(b[64:68]))
	t, err := New(store, opts)
	if err != nil {
		return nil, err
	}
	t.root.min.Key = binary.LittleEndian.Uint64(b[0:8])
	t.root.min.Val = binary.LittleEndian.Uint64(b[8:16])
	t.root.page = page.ID(binary.LittleEndian.Uint32(b[16:20]))
	t.root.boxLo = binary.LittleEndian.Uint64(b[20:28])
	t.root.boxHi = binary.LittleEndian.Uint64(b[28:36])
	t.height = int(binary.LittleEndian.Uint64(b[36:44]))
	t.count = int(binary.LittleEndian.Uint64(b[44:52]))
	t.nLeaves = int(binary.LittleEndian.Uint64(b[52:60]))
	nFree := int(binary.LittleEndian.Uint32(b[68:72]))
	if len(meta) != metaFixed+4*nFree {
		return nil, fmt.Errorf("bptree: meta is %d bytes, want %d for %d free pages", len(meta), metaFixed+4*nFree, nFree)
	}
	t.free = make([]page.ID, nFree)
	for i := range t.free {
		t.free[i] = page.ID(binary.LittleEndian.Uint32(b[72+4*i:]))
		if int(t.free[i]) >= store.NumPages() {
			return nil, fmt.Errorf("bptree: meta free page %d beyond store", t.free[i])
		}
	}
	if t.root.page != invalidPage && int(t.root.page) >= store.NumPages() {
		return nil, fmt.Errorf("bptree: meta root page %d beyond store (%d pages)", t.root.page, store.NumPages())
	}
	return t, nil
}
