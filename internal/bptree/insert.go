package bptree

import "sort"

// Insert adds the entry (key, val). Duplicate pairs are permitted and stored
// as a multiset, though SPB-tree usage always supplies unique vals.
func (t *Tree) Insert(key, val uint64) error {
	e := Pair{Key: key, Val: val}
	if t.root.page == invalidPage {
		leaf, err := t.allocNode(true)
		if err != nil {
			return err
		}
		leaf.leafEntries = []Pair{e}
		if err := t.writeNode(leaf); err != nil {
			return err
		}
		t.root = child{page: leaf.page}
		t.refresh(&t.root, leaf)
		t.height = 1
		t.count = 1
		t.nLeaves = 1
		return nil
	}
	split, err := t.insertInto(&t.root, e)
	if err != nil {
		return err
	}
	if split != nil {
		r, err := t.allocNode(false)
		if err != nil {
			return err
		}
		r.children = []child{t.root, *split}
		if err := t.writeNode(r); err != nil {
			return err
		}
		nc := child{page: r.page}
		t.refresh(&nc, r)
		t.root = nc
		t.height++
	}
	t.count++
	return nil
}

// insertInto inserts e into the subtree referenced by c, updating c's min
// pair and box in place. If the subtree's root node split, the new right
// sibling's reference is returned for the caller to adopt.
func (t *Tree) insertInto(c *child, e Pair) (*child, error) {
	n, err := t.readNode(c.page)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		pos := sort.Search(len(n.leafEntries), func(i int) bool { return e.Less(n.leafEntries[i]) })
		n.leafEntries = append(n.leafEntries, Pair{})
		copy(n.leafEntries[pos+1:], n.leafEntries[pos:])
		n.leafEntries[pos] = e
		if len(n.leafEntries) <= t.maxLeaf {
			if err := t.writeNode(n); err != nil {
				return nil, err
			}
			t.refresh(c, n)
			return nil, nil
		}
		// Split the leaf in half; the right half becomes a new node spliced
		// into the leaf chain.
		mid := len(n.leafEntries) / 2
		right, err := t.allocNode(true)
		if err != nil {
			return nil, err
		}
		right.leafEntries = append(right.leafEntries, n.leafEntries[mid:]...)
		n.leafEntries = n.leafEntries[:mid]
		right.next = n.next
		n.next = right.page
		if err := t.writeNode(n); err != nil {
			return nil, err
		}
		if err := t.writeNode(right); err != nil {
			return nil, err
		}
		t.nLeaves++
		t.refresh(c, n)
		rc := child{page: right.page}
		t.refresh(&rc, right)
		return &rc, nil
	}

	idx := childIndex(n.children, e)
	split, err := t.insertInto(&n.children[idx], e)
	if err != nil {
		return nil, err
	}
	if split != nil {
		pos := idx + 1
		n.children = append(n.children, child{})
		copy(n.children[pos+1:], n.children[pos:])
		n.children[pos] = *split
	}
	if len(n.children) <= t.maxInternal {
		if err := t.writeNode(n); err != nil {
			return nil, err
		}
		t.refresh(c, n)
		return nil, nil
	}
	mid := len(n.children) / 2
	right, err := t.allocNode(false)
	if err != nil {
		return nil, err
	}
	right.children = append(right.children, n.children[mid:]...)
	n.children = n.children[:mid]
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	t.refresh(c, n)
	rc := child{page: right.page}
	t.refresh(&rc, right)
	return &rc, nil
}

// childIndex returns the index of the child whose subtree should contain e:
// the last child whose min pair is <= e, clamped to 0 for entries smaller
// than every subtree.
func childIndex(children []child, e Pair) int {
	idx := sort.Search(len(children), func(i int) bool { return e.Less(children[i].min) }) - 1
	if idx < 0 {
		idx = 0
	}
	return idx
}
