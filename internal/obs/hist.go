package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets. Bucket i counts observations
// in [2^i µs, 2^(i+1) µs) except the first (everything below 2 µs) and the
// last (everything at or above 2^(histBuckets-1) µs ≈ 2.2 s), so the whole
// range from sub-microsecond cache hits to multi-second scans fits in a
// fixed, allocation-free array.
const histBuckets = 22

// Histogram is a fixed-bucket, power-of-two latency histogram. The zero
// value is ready to use; Record is lock-free and safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 2 {
		return 0
	}
	idx := 0
	for v := us; v > 1 && idx < histBuckets-1; v >>= 1 {
		idx++
	}
	return idx
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumNS.Add(int64(d))
	for {
		old := h.maxNS.Load()
		if int64(d) <= old || h.maxNS.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the mean observed latency (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Max returns the largest observation seen.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Quantile returns an upper bound for the p-quantile (0 ≤ p ≤ 1), resolved
// to bucket granularity: the upper edge of the bucket containing the p-th
// observation. Empty histograms return 0.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// bucketUpper returns the exclusive upper edge of bucket i.
func bucketUpper(i int) time.Duration {
	if i >= histBuckets-1 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(uint64(1)<<uint(i+1)) * time.Microsecond
}

// Snapshot returns the non-empty buckets as (upper-edge, count) pairs plus
// the totals, a stable copy safe to serialize.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.total.Load(),
		MaxNS: h.maxNS.Load(),
		SumNS: h.sumNS.Load(),
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNS: int64(bucketUpper(i)), Count: c})
		}
	}
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sumNS.Store(0)
	h.maxNS.Store(0)
}

// HistBucket is one non-empty bucket of a HistSnapshot.
type HistBucket struct {
	// UpperNS is the bucket's exclusive upper edge in nanoseconds
	// (math.MaxInt64 for the overflow bucket).
	UpperNS int64 `json:"upper_ns"`
	// Count is the observations in the bucket.
	Count int64 `json:"count"`
}

// HistSnapshot is a stable copy of a Histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MaxNS   int64        `json:"max_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// String renders the snapshot compactly for logs and spbtool stats.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "no observations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v max=%v", s.Count,
		time.Duration(s.SumNS/s.Count).Round(time.Microsecond),
		time.Duration(s.MaxNS).Round(time.Microsecond))
	return b.String()
}
