package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpMetrics accumulates one operation type's lifetime totals: query count,
// errors, result counts, the paper's two cost metrics (compdists and PA,
// split index vs data), and a latency histogram. All methods are lock-free
// and safe for concurrent use.
type OpMetrics struct {
	queries   atomic.Int64
	errors    atomic.Int64
	results   atomic.Int64
	compdists atomic.Int64
	indexPA   atomic.Int64
	dataPA    atomic.Int64
	latency   Histogram
}

// Observe folds one finished query into the aggregates.
func (m *OpMetrics) Observe(compdists, indexPA, dataPA, results int64, elapsed time.Duration, failed bool) {
	m.queries.Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.results.Add(results)
	m.compdists.Add(compdists)
	m.indexPA.Add(indexPA)
	m.dataPA.Add(dataPA)
	m.latency.Record(elapsed)
}

// Latency exposes the histogram for direct inspection.
func (m *OpMetrics) Latency() *Histogram { return &m.latency }

// Snapshot returns a stable copy.
func (m *OpMetrics) Snapshot() OpSnapshot {
	return OpSnapshot{
		Queries:   m.queries.Load(),
		Errors:    m.errors.Load(),
		Results:   m.results.Load(),
		Compdists: m.compdists.Load(),
		IndexPA:   m.indexPA.Load(),
		DataPA:    m.dataPA.Load(),
		Latency:   m.latency.Snapshot(),
	}
}

// OpSnapshot is a stable copy of an OpMetrics, JSON-serializable for expvar.
type OpSnapshot struct {
	// Queries counts finished operations; Errors those that returned a
	// non-nil error (partial results included).
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors,omitempty"`
	// Results is the total answers returned.
	Results int64 `json:"results"`
	// Compdists is the paper's distance-computation total.
	Compdists int64 `json:"compdists"`
	// IndexPA and DataPA are physical page accesses below the caches on the
	// B+-tree and RAF stores; their sum is the paper's PA.
	IndexPA int64 `json:"index_pa"`
	DataPA  int64 `json:"data_pa"`
	// Latency is the wall-clock histogram.
	Latency HistSnapshot `json:"latency"`
}

// PA returns the combined page-access total (the paper's PA metric).
func (s OpSnapshot) PA() int64 { return s.IndexPA + s.DataPA }

// Registry holds one OpMetrics per operation name ("range", "knn", "join",
// …). The zero value is ready to use; Op interns metrics on first use so the
// query path after warm-up is a read-locked map lookup plus atomic adds.
type Registry struct {
	mu  sync.RWMutex
	ops map[string]*OpMetrics
}

// Op returns (creating if needed) the metrics for an operation name.
func (r *Registry) Op(name string) *OpMetrics {
	r.mu.RLock()
	m := r.ops[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ops == nil {
		r.ops = make(map[string]*OpMetrics)
	}
	if m = r.ops[name]; m == nil {
		m = &OpMetrics{}
		r.ops[name] = m
	}
	return m
}

// Snapshot copies every operation's aggregates, keyed by name.
func (r *Registry) Snapshot() map[string]OpSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]OpSnapshot, len(r.ops))
	for name, m := range r.ops {
		out[name] = m.Snapshot()
	}
	return out
}

// Names returns the registered operation names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for name := range r.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Publish exports the registry's snapshot under name via expvar (see
// Publish); typically name is "spbtree" and the JSON value appears at
// /debug/vars on the -debugaddr listener.
func (r *Registry) Publish(name string) bool {
	return Publish(name, func() interface{} { return r.Snapshot() })
}
