package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9},          // 1000µs ∈ [2^9, 2^10)
		{time.Second, 19},              // 1e6µs ∈ [2^19, 2^20)
		{time.Minute, histBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's upper edge is strictly increasing, and the observation
	// always falls strictly below its bucket's upper edge.
	for i := 0; i < histBuckets-1; i++ {
		if bucketUpper(i) >= bucketUpper(i+1) {
			t.Fatalf("bucket edges not increasing at %d", i)
		}
	}
	for _, c := range cases {
		if c.d >= bucketUpper(c.want) {
			t.Errorf("%v not below its bucket's upper edge %v", c.d, bucketUpper(c.want))
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not empty")
	}
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Microsecond)
	}
	h.Record(100 * time.Millisecond)
	if h.Count() != 101 {
		t.Errorf("Count = %d, want 101", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	// The median bucket is [8µs, 16µs); the p99.9 observation is the outlier.
	if q := h.Quantile(0.5); q != 16*time.Microsecond {
		t.Errorf("Quantile(0.5) = %v, want 16µs", q)
	}
	if q := h.Quantile(1); q < 100*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want ≥ max", q)
	}
	snap := h.Snapshot()
	if snap.Count != 101 || len(snap.Buckets) != 2 {
		t.Errorf("snapshot count=%d buckets=%d, want 101 and 2", snap.Count, len(snap.Buckets))
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 101 {
		t.Errorf("bucket counts sum to %d, want 101", total)
	}
	if s := snap.String(); s == "" || s == "no observations" {
		t.Errorf("String() = %q", s)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not zero the histogram")
	}
	if (HistSnapshot{}).String() != "no observations" {
		t.Error("empty snapshot String")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestOpMetricsAndRegistry(t *testing.T) {
	var r Registry
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("zero registry has names %v", names)
	}
	m := r.Op("range")
	if r.Op("range") != m {
		t.Fatal("Op does not intern")
	}
	m.Observe(10, 2, 3, 7, time.Millisecond, false)
	m.Observe(5, 1, 1, 0, 2*time.Millisecond, true)
	snap := m.Snapshot()
	if snap.Queries != 2 || snap.Errors != 1 || snap.Results != 7 ||
		snap.Compdists != 15 || snap.IndexPA != 3 || snap.DataPA != 4 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.PA() != 7 {
		t.Errorf("PA() = %d, want 7", snap.PA())
	}
	if snap.Latency.Count != 2 {
		t.Errorf("latency count = %d, want 2", snap.Latency.Count)
	}
	r.Op("knn").Observe(1, 1, 0, 1, time.Microsecond, false)
	if got := r.Names(); len(got) != 2 || got[0] != "knn" || got[1] != "range" {
		t.Errorf("Names = %v", got)
	}
	all := r.Snapshot()
	if all["range"].Queries != 2 || all["knn"].Queries != 1 {
		t.Errorf("registry snapshot = %+v", all)
	}
	// The snapshot must serialize cleanly (it is the expvar payload).
	if _, err := json.Marshal(all); err != nil {
		t.Errorf("snapshot not JSON-serializable: %v", err)
	}
}

func TestPublishDuplicate(t *testing.T) {
	name := fmt.Sprintf("obs-test-%d", time.Now().UnixNano())
	if !Publish(name, func() interface{} { return 1 }) {
		t.Fatal("first Publish returned false")
	}
	if Publish(name, func() interface{} { return 2 }) {
		t.Fatal("duplicate Publish returned true")
	}
	var r Registry
	if r.Publish(name) {
		t.Fatal("registry Publish on taken name returned true")
	}
}

func TestStringers(t *testing.T) {
	kinds := map[EventKind]string{
		EvPageRead: "page-read", EvPageWrite: "page-write",
		EvCacheHit: "cache-hit", EvCacheMiss: "cache-miss",
		EvNodeRead: "node-read", EvRecordRead: "record-read",
		EventKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if SrcIndex.String() != "index" || SrcData.String() != "data" || SrcUnknown.String() != "unknown" {
		t.Error("Src stringer wrong")
	}
}

// TestNopTracerZeroAlloc pins the allocation cost of a live emit site: a
// NopTracer passed an Event by value must not allocate.
func TestNopTracerZeroAlloc(t *testing.T) {
	var tr Tracer = NopTracer{}
	ev := Event{Kind: EvPageRead, Src: SrcIndex, Page: 42}
	if n := testing.AllocsPerRun(1000, func() { tr.Event(ev) }); n != 0 {
		t.Errorf("NopTracer emit allocates %v per run, want 0", n)
	}
}
