// Package obs is the observability substrate of the SPB-tree: allocation-
// light counters, fixed-bucket latency histograms, and a structured tracing
// hook, all designed so that the instrumented hot paths pay (nearly) nothing
// when nobody is looking.
//
// Three layers build on it:
//
//   - per-query stage counters (core.QueryStats) report a single query's
//     cost in the paper's metrics — distance computations ("compdists") and
//     page accesses ("PA") — broken down by pruning stage;
//   - per-tree aggregates (Registry/OpMetrics) accumulate those queries into
//     counters and latency histograms, snapshottable at any time and
//     exportable via expvar for scraping;
//   - the Tracer interface receives structured events (page reads, cache
//     hits, node and record reads) from internal/page, internal/bptree and
//     internal/raf, for ad-hoc debugging and custom telemetry. The default
//     is no tracer: emit sites are a single nil check, and a no-op Tracer
//     allocates nothing.
//
// DESIGN.md §7 defines every counter and maps it to the paper's reported
// metrics.
package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Src identifies which half of the SPB-tree an event or counter belongs to:
// the B+-tree index store or the RAF data store. The paper reports the two
// separately (index pages are touched by pruning, data pages by
// verification).
type Src uint8

const (
	// SrcUnknown is the zero Src, used when the component is not wired to a
	// particular store.
	SrcUnknown Src = iota
	// SrcIndex is the B+-tree page store.
	SrcIndex
	// SrcData is the RAF page store.
	SrcData
)

// String implements fmt.Stringer.
func (s Src) String() string {
	switch s {
	case SrcIndex:
		return "index"
	case SrcData:
		return "data"
	}
	return "unknown"
}

// EventKind discriminates trace events.
type EventKind uint8

const (
	// EvPageRead is a physical page read below the buffer cache.
	EvPageRead EventKind = iota + 1
	// EvPageWrite is a physical page write below the buffer cache.
	EvPageWrite
	// EvCacheHit is a page read served from the buffer cache.
	EvCacheHit
	// EvCacheMiss is a page read that fell through the buffer cache.
	EvCacheMiss
	// EvNodeRead is a B+-tree node decoded from its page.
	EvNodeRead
	// EvRecordRead is a RAF record decoded from its pages.
	EvRecordRead
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPageRead:
		return "page-read"
	case EvPageWrite:
		return "page-write"
	case EvCacheHit:
		return "cache-hit"
	case EvCacheMiss:
		return "cache-miss"
	case EvNodeRead:
		return "node-read"
	case EvRecordRead:
		return "record-read"
	}
	return "unknown"
}

// Event is one structured trace event. It is passed by value so emitting an
// event through a non-nil Tracer performs no heap allocation; implementations
// must not retain pointers into it (it has none).
type Event struct {
	// Kind says what happened.
	Kind EventKind
	// Src says on which store (index or data) it happened.
	Src Src
	// Page is the page involved, for page-granular kinds.
	Page uint32
	// Offset is the byte offset, for EvRecordRead.
	Offset uint64
	// Bytes is the payload size, for EvRecordRead.
	Bytes int32
}

// Tracer receives structured events from the storage layers. Implementations
// must be safe for concurrent use and should be fast: events are emitted
// synchronously on the query path. A nil Tracer disables emission entirely
// (a single branch per site).
type Tracer interface {
	Event(Event)
}

// NopTracer is a Tracer that discards every event. It exists for tests and
// for callers that want to toggle tracing without rewiring: installing a
// NopTracer exercises every emit site at zero allocations.
type NopTracer struct{}

// Event implements Tracer.
func (NopTracer) Event(Event) {}

// ioRetries counts transient-I/O retries (short writes, EINTR) absorbed by
// the write path via internal/retry — one increment per retried attempt,
// process-wide. A nonzero, slowly-growing value is normal on busy hosts; a
// spike says the storage layer is fighting interruptions rather than latency.
var ioRetries atomic.Int64

// AddIORetry adds n to the process-wide transient-retry counter. Called by
// internal/retry; exported so alternative retry sites can share the counter.
func AddIORetry(n int) { ioRetries.Add(int64(n)) }

// IORetries reads the process-wide transient-retry counter.
func IORetries() int64 { return ioRetries.Load() }

// rpcRetries counts transient-RPC retries (reset connections, refused dials
// to a node mid-restart) absorbed by the cluster layer via retry.Do — one
// increment per retried attempt, process-wide. A spike with healthy disks
// points at the network or at flapping nodes.
var rpcRetries atomic.Int64

// AddRPCRetry adds n to the process-wide transient-RPC-retry counter.
func AddRPCRetry(n int) { rpcRetries.Add(int64(n)) }

// RPCRetries reads the process-wide transient-RPC-retry counter.
func RPCRetries() int64 { return rpcRetries.Load() }

// publishMu serializes expvar publication checks (expvar.Publish panics on
// duplicate names, so Publish must test-and-set atomically).
var publishMu sync.Mutex

// Publish exports fn under name in the process-wide expvar registry, served
// at /debug/vars by any HTTP listener with the expvar handler (e.g. the
// -debugaddr flag of spbtool and spbbench). Publishing the same name twice
// replaces nothing and is a no-op, so re-opened trees can re-publish safely.
// It reports whether the name was newly published.
func Publish(name string, fn func() interface{}) bool {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(fn))
	return true
}
