// Package omni implements the OmniR-tree of Traina et al.'s Omni-family —
// the second baseline of the paper's evaluation. Objects are mapped to
// "Omni coordinates" (their distances to a set of HF-selected foci) and the
// coordinates are indexed by an R-tree; the actual objects live in a
// sequential data file. Every object's full pre-computed distance vector is
// stored in the R-tree leaves, which is precisely the storage overhead the
// SPB-tree's SFC encoding eliminates (paper Table 6).
package omni

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/pivot"
	"spbtree/internal/raf"
	"spbtree/internal/rtree"
)

// Options configures Build.
type Options struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from the data file; required.
	Codec metric.Codec
	// NumFoci is the number of foci (pivots). The Omni paper recommends the
	// intrinsic dimensionality + 1; 0 means 5 to match the paper's setup.
	NumFoci int
	// IndexStore and DataStore back the R-tree and the data file; nil
	// selects fresh in-memory stores.
	IndexStore, DataStore page.Store
	// CacheSize is the per-store buffer-cache capacity (default 32).
	CacheSize int
	// Seed seeds HF sampling; 0 means 1.
	Seed int64
}

// Tree is a built OmniR-tree.
type Tree struct {
	dist      *metric.Counter
	foci      []metric.Object
	rt        *rtree.Tree
	raf       *raf.File
	dataCache *page.Cache
	count     int
}

// Result is one search answer.
type Result struct {
	Object metric.Object
	Dist   float64
}

// Build constructs the OmniR-tree: HF foci, Omni-coordinate computation
// (|O|×|foci| distance computations), STR bulk-load of the R-tree, and a
// sequential data file.
func Build(objs []metric.Object, opts Options) (*Tree, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("omni: Distance and Codec are required")
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("omni: empty dataset")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	k := opts.NumFoci
	if k == 0 {
		k = 5
	}
	cache := opts.CacheSize
	if cache == 0 {
		cache = 32
	}
	t := &Tree{dist: metric.NewCounter(opts.Distance)}
	rng := rand.New(rand.NewSource(seed))
	// Selection runs on the unwrapped metric so construction compdists count
	// the |O|×|foci| coordinate computations, matching Table 6's accounting.
	t.foci = pivot.HF{}.Select(objs, opts.Distance, k, rng)
	if len(t.foci) == 0 {
		return nil, fmt.Errorf("omni: HF selected no foci")
	}

	idxStore := opts.IndexStore
	if idxStore == nil {
		idxStore = page.NewMemStore()
	}
	dataStore := opts.DataStore
	if dataStore == nil {
		dataStore = page.NewMemStore()
	}
	t.dataCache = page.NewCache(dataStore, cache)
	var err error
	t.rt, err = rtree.New(rtree.Options{Dims: len(t.foci), Store: idxStore, CacheSize: cache})
	if err != nil {
		return nil, err
	}
	t.raf = raf.New(t.dataCache, opts.Codec)

	points := make([][]float64, len(objs))
	vals := make([]uint64, len(objs))
	for i, o := range objs {
		off, err := t.raf.Append(o)
		if err != nil {
			return nil, err
		}
		points[i] = t.coords(o)
		vals[i] = off
	}
	if err := t.raf.Flush(); err != nil {
		return nil, err
	}
	if err := t.rt.BulkLoad(points, vals); err != nil {
		return nil, err
	}
	t.count = len(objs)
	return t, nil
}

// coords computes the Omni coordinates ⟨d(o, f_1), …, d(o, f_k)⟩.
func (t *Tree) coords(o metric.Object) []float64 {
	c := make([]float64, len(t.foci))
	for i, f := range t.foci {
		c[i] = t.dist.Distance(o, f)
	}
	return c
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.count }

// Insert adds one object.
func (t *Tree) Insert(o metric.Object) error {
	off, err := t.raf.Append(o)
	if err != nil {
		return err
	}
	if err := t.raf.Flush(); err != nil {
		return err
	}
	if err := t.rt.Insert(t.coords(o), off); err != nil {
		return err
	}
	t.count++
	return nil
}

// RangeQuery returns every object within r of q: an R-tree box search over
// the mapped region (the Omni analogue of Lemma 1) plus verification.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	if r < 0 {
		return nil, nil
	}
	qc := t.coords(q)
	lo := make([]float64, len(qc))
	hi := make([]float64, len(qc))
	for i, d := range qc {
		lo[i] = d - r
		hi[i] = d + r
	}
	var out []Result
	err := t.rt.Search(lo, hi, func(point []float64, val uint64) error {
		obj, err := t.raf.Read(val)
		if err != nil {
			return err
		}
		if d := t.dist.Distance(q, obj); d <= r {
			out = append(out, Result{Object: obj, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, nil
}

// KNN returns the k nearest neighbors using the incremental R-tree scan in
// the L∞ mapped space: the MINDIST of a candidate lower-bounds its metric
// distance, so the scan stops once MINDIST ≥ curND_k.
func (t *Tree) KNN(q metric.Object, k int) ([]Result, error) {
	if k <= 0 || t.count == 0 {
		return nil, nil
	}
	qc := t.coords(q)
	it := t.rt.NearestIter(qc, rtree.LInf)
	best := make([]Result, 0, k)
	bound := math.Inf(1)
	for {
		_, val, mind, ok := it.Next()
		if !ok {
			break
		}
		if mind >= bound {
			break
		}
		obj, err := t.raf.Read(val)
		if err != nil {
			return nil, err
		}
		d := t.dist.Distance(q, obj)
		if len(best) < k {
			best = append(best, Result{Object: obj, Dist: d})
			if len(best) == k {
				bound = maxDist(best)
			}
		} else if d < bound {
			replaceWorst(best, Result{Object: obj, Dist: d})
			bound = maxDist(best)
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	sort.Slice(best, func(i, j int) bool {
		if best[i].Dist != best[j].Dist {
			return best[i].Dist < best[j].Dist
		}
		return best[i].Object.ID() < best[j].Object.ID()
	})
	return best, nil
}

func maxDist(rs []Result) float64 {
	m := 0.0
	for _, r := range rs {
		if r.Dist > m {
			m = r.Dist
		}
	}
	return m
}

func replaceWorst(rs []Result, x Result) {
	worst := 0
	for i := 1; i < len(rs); i++ {
		if rs[i].Dist > rs[worst].Dist {
			worst = i
		}
	}
	rs[worst] = x
}

// ResetStats zeroes both stores' counters and the distance counter.
func (t *Tree) ResetStats() {
	t.rt.Store().Stats().Reset()
	t.rt.Store().Flush()
	t.dataCache.Stats().Reset()
	t.dataCache.Flush()
	t.dist.Reset()
}

// TakeStats reads (page accesses, distance computations) since the reset.
func (t *Tree) TakeStats() (pa, compdists int64) {
	return t.rt.Store().Stats().Accesses() + t.dataCache.Stats().Accesses(), t.dist.Count()
}

// StorageBytes returns the R-tree plus data-file footprint.
func (t *Tree) StorageBytes() int64 {
	return int64(t.rt.NumPages())*page.Size + int64(t.raf.PagesUsed())*page.Size
}
