package pmtree

import (
	"fmt"

	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// BulkLoad builds the tree with the same sampled recursive clustering as the
// M-tree baseline, additionally computing the per-object pivot distances
// (|O|×np computations — the PM-tree's extra construction cost) and the
// per-subtree hyper-rings bottom-up.
func (t *Tree) BulkLoad(objs []metric.Object) error {
	return t.BulkLoadWithPivots(objs, 0)
}

// BulkLoadWithPivots is BulkLoad with an explicit global pivot count.
func (t *Tree) BulkLoadWithPivots(objs []metric.Object, numPivots int) error {
	if t.hasRoot {
		return fmt.Errorf("pmtree: BulkLoad on non-empty tree")
	}
	if len(objs) == 0 {
		return nil
	}
	if err := t.selectPivots(objs, numPivots); err != nil {
		return err
	}
	pg, _, hr, err := t.bulkBuild(objs, nil, 0)
	if err != nil {
		return err
	}
	t.rootPage = pg
	t.rootHR = hr
	t.hasRoot = true
	t.count = len(objs)
	return nil
}

// bulkBuild builds a subtree and returns its page, covering radius w.r.t.
// parent, and hyper-rings.
func (t *Tree) bulkBuild(objs []metric.Object, parent metric.Object, depth int) (page.ID, float64, []ring, error) {
	if depth > 64 {
		return 0, 0, nil, fmt.Errorf("pmtree: bulk-load recursion too deep")
	}
	if t.leafFits(objs) {
		n, err := t.allocNode(true)
		if err != nil {
			return 0, 0, nil, err
		}
		hr := emptyRings(len(t.pivots))
		var radius float64
		n.entries = make([]entry, len(objs))
		for i, o := range objs {
			var dp float64
			if parent != nil {
				dp = t.dist.Distance(o, parent)
			}
			if dp > radius {
				radius = dp
			}
			pd := t.computePD(o)
			for ti, d := range pd {
				hr[ti].expand(d)
			}
			n.entries[i] = entry{obj: o, objLen: len(o.AppendBinary(nil)), dParent: dp, isLeaf: true, pd: pd}
		}
		if err := t.writeNode(n); err != nil {
			return 0, 0, nil, err
		}
		return n.page, radius, hr, nil
	}

	f := t.fanoutEstimate(objs)
	seeds := t.sampleDistinct(objs, f)
	groups := make([][]metric.Object, len(seeds))
	for _, o := range objs {
		best, bd := 0, t.dist.Distance(o, seeds[0])
		for s := 1; s < len(seeds); s++ {
			if d := t.dist.Distance(o, seeds[s]); d < bd {
				best, bd = s, d
			}
		}
		groups[best] = append(groups[best], o)
	}
	for gi := range groups {
		if len(groups[gi]) == len(objs) {
			groups = chunk(objs, len(seeds))
			seeds = make([]metric.Object, len(groups))
			for ci, g := range groups {
				seeds[ci] = g[0]
			}
			break
		}
	}

	hr := emptyRings(len(t.pivots))
	var radius float64
	var rents []entry
	for gi, group := range groups {
		if len(group) == 0 {
			continue
		}
		seed := seeds[gi]
		childPg, childRad, childHR, err := t.bulkBuild(group, seed, depth+1)
		if err != nil {
			return 0, 0, nil, err
		}
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(seed, parent)
		}
		if cover := dp + childRad; cover > radius {
			radius = cover
		}
		expandRings(hr, childHR)
		rents = append(rents, entry{
			obj: seed, objLen: len(seed.AppendBinary(nil)),
			dParent: dp, radius: childRad, child: childPg, hr: childHR,
		})
	}
	pg, err := t.packEntries(rents, parent)
	if err != nil {
		return 0, 0, nil, err
	}
	return pg, radius, hr, nil
}

// packEntries writes routing entries into one internal node, or — when
// variable-size routing objects exceed the page budget the fan-out estimate
// assumed — spills them into several nodes under a fresh internal level,
// recomputing distances to the interposed routing objects so the
// parent-distance pruning invariant holds.
func (t *Tree) packEntries(rents []entry, parent metric.Object) (page.ID, error) {
	if t.nodeBytes(rents) <= page.Size || len(rents) < 2 {
		n, err := t.allocNode(false)
		if err != nil {
			return 0, err
		}
		n.entries = rents
		if err := t.writeNode(n); err != nil {
			return 0, err
		}
		return n.page, nil
	}
	// Greedy byte packing into fitting chunks.
	var supers []entry
	start := 0
	for start < len(rents) {
		end := start + 1
		size := nodeHeader + t.entryBytes(&rents[start])
		for end < len(rents) {
			next := t.entryBytes(&rents[end])
			if size+next > page.Size {
				break
			}
			size += next
			end++
		}
		chunk := make([]entry, end-start)
		copy(chunk, rents[start:end])
		start = end

		pivotObj := chunk[0].obj
		hr := emptyRings(len(t.pivots))
		var radius float64
		for i := range chunk {
			d := t.dist.Distance(chunk[i].obj, pivotObj)
			chunk[i].dParent = d
			if cover := d + chunk[i].radius; cover > radius {
				radius = cover
			}
			expandRings(hr, chunk[i].hr)
		}
		n, err := t.allocNode(false)
		if err != nil {
			return 0, err
		}
		n.entries = chunk
		if err := t.writeNode(n); err != nil {
			return 0, err
		}
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(pivotObj, parent)
		}
		supers = append(supers, entry{
			obj: pivotObj, objLen: len(pivotObj.AppendBinary(nil)),
			dParent: dp, radius: radius, child: n.page, hr: hr,
		})
	}
	if len(supers) >= len(rents) {
		return 0, fmt.Errorf("pmtree: routing entries too large to pack (objects near page size?)")
	}
	return t.packEntries(supers, parent)
}

func (t *Tree) leafFits(objs []metric.Object) bool {
	n := nodeHeader
	for _, o := range objs {
		n += t.leafEntryBytes(len(o.AppendBinary(nil)))
		if n > page.Size {
			return false
		}
	}
	return true
}

func (t *Tree) fanoutEstimate(objs []metric.Object) int {
	sampleN := len(objs)
	if sampleN > 32 {
		sampleN = 32
	}
	total := 0
	for i := 0; i < sampleN; i++ {
		total += len(objs[i].AppendBinary(nil))
	}
	avg := total/sampleN + 1
	f := (page.Size - nodeHeader) / t.routingEntryBytes(avg)
	if f < 2 {
		f = 2
	}
	if f > 64 {
		f = 64
	}
	if f > len(objs) {
		f = len(objs)
	}
	return f
}

func (t *Tree) sampleDistinct(objs []metric.Object, k int) []metric.Object {
	idx := t.rng.Perm(len(objs))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]metric.Object, k)
	for i := 0; i < k; i++ {
		out[i] = objs[idx[i]]
	}
	return out
}

func chunk(objs []metric.Object, k int) [][]metric.Object {
	if k < 2 {
		k = 2
	}
	size := (len(objs) + k - 1) / k
	var out [][]metric.Object
	for i := 0; i < len(objs); i += size {
		end := i + size
		if end > len(objs) {
			end = len(objs)
		}
		out = append(out, objs[i:end])
	}
	return out
}

// Insert adds one object: M-tree descent with hyper-ring expansion along the
// path, plus the object's pivot distances at the leaf.
func (t *Tree) Insert(o metric.Object) error {
	if !t.hasRoot {
		if len(t.pivots) == 0 {
			if err := t.selectPivots([]metric.Object{o}, 0); err != nil {
				return err
			}
		}
		n, err := t.allocNode(true)
		if err != nil {
			return err
		}
		pd := t.computePD(o)
		n.entries = []entry{{obj: o, objLen: len(o.AppendBinary(nil)), isLeaf: true, pd: pd}}
		if err := t.writeNode(n); err != nil {
			return err
		}
		t.rootPage = n.page
		t.rootHR = emptyRings(len(t.pivots))
		for ti, d := range pd {
			t.rootHR[ti].expand(d)
		}
		t.hasRoot = true
		t.count = 1
		return nil
	}
	pd := t.computePD(o)
	split, err := t.insertAt(t.rootPage, o, pd, nil)
	if err != nil {
		return err
	}
	if split != nil {
		root, err := t.allocNode(false)
		if err != nil {
			return err
		}
		root.entries = split
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.rootPage = root.page
	}
	for ti, d := range pd {
		t.rootHR[ti].expand(d)
	}
	t.count++
	return nil
}

func (t *Tree) insertAt(pg page.ID, o metric.Object, pd []float64, parent metric.Object) ([]entry, error) {
	n, err := t.readNode(pg)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		var dp float64
		if parent != nil {
			dp = t.dist.Distance(o, parent)
		}
		n.entries = append(n.entries, entry{obj: o, objLen: len(o.AppendBinary(nil)), dParent: dp, isLeaf: true, pd: pd})
		if t.nodeBytes(n.entries) <= page.Size {
			return nil, t.writeNode(n)
		}
		return t.split(n)
	}

	bestIdx, bestD := -1, 0.0
	enlargeIdx, enlargeBy, enlargeD := -1, 0.0, 0.0
	for i := range n.entries {
		e := &n.entries[i]
		d := t.dist.Distance(o, e.obj)
		if d <= e.radius {
			if bestIdx < 0 || d < bestD {
				bestIdx, bestD = i, d
			}
			continue
		}
		if enlargeIdx < 0 || d-e.radius < enlargeBy {
			enlargeIdx, enlargeBy, enlargeD = i, d-e.radius, d
		}
	}
	if bestIdx < 0 {
		bestIdx = enlargeIdx
		n.entries[bestIdx].radius = enlargeD
	}
	chosen := &n.entries[bestIdx]
	for ti, d := range pd {
		chosen.hr[ti].expand(d)
	}
	split, err := t.insertAt(chosen.child, o, pd, chosen.obj)
	if err != nil {
		return nil, err
	}
	if split != nil {
		for i := range split {
			if parent != nil {
				split[i].dParent = t.dist.Distance(split[i].obj, parent)
			}
		}
		n.entries[bestIdx] = split[0]
		n.entries = append(n.entries, split[1])
	}
	if t.nodeBytes(n.entries) <= page.Size {
		return nil, t.writeNode(n)
	}
	return t.split(n)
}

// split partitions an overflowing node by random/farthest promotion,
// recomputing per-side hyper-rings.
func (t *Tree) split(n *node) ([]entry, error) {
	entries := n.entries
	if len(entries) < 2 {
		return nil, fmt.Errorf("pmtree: cannot split node %d with %d entries", n.page, len(entries))
	}
	p1 := t.rng.Intn(len(entries))
	d1s := make([]float64, len(entries))
	p2, far := -1, -1.0
	for i := range entries {
		d1s[i] = t.dist.Distance(entries[i].obj, entries[p1].obj)
		if i != p1 && d1s[i] > far {
			p2, far = i, d1s[i]
		}
	}
	o1, o2 := entries[p1].obj, entries[p2].obj

	left := &node{page: n.page, leaf: n.leaf}
	right, err := t.allocNode(n.leaf)
	if err != nil {
		return nil, err
	}
	hr1 := emptyRings(len(t.pivots))
	hr2 := emptyRings(len(t.pivots))
	var r1, r2 float64
	addTo := func(dst *node, hr []ring, e entry, dp float64, r *float64) {
		e.dParent = dp
		if cover := dp + e.radius; cover > *r {
			*r = cover
		}
		if e.isLeaf {
			for ti, d := range e.pd {
				hr[ti].expand(d)
			}
		} else {
			expandRings(hr, e.hr)
		}
		dst.entries = append(dst.entries, e)
	}
	for i := range entries {
		e := entries[i]
		d2 := t.dist.Distance(e.obj, o2)
		if d1s[i] <= d2 || i == p1 {
			addTo(left, hr1, e, d1s[i], &r1)
		} else {
			addTo(right, hr2, e, d2, &r2)
		}
	}
	if len(right.entries) == 0 {
		last := left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		addTo(right, hr2, last, t.dist.Distance(last.obj, o2), &r2)
	}
	if err := t.writeNode(left); err != nil {
		return nil, err
	}
	if err := t.writeNode(right); err != nil {
		return nil, err
	}
	return []entry{
		{obj: o1, objLen: len(o1.AppendBinary(nil)), radius: r1, child: left.page, hr: hr1},
		{obj: o2, objLen: len(o2.AppendBinary(nil)), radius: r2, child: right.page, hr: hr2},
	}, nil
}
