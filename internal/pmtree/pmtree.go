// Package pmtree implements the PM-tree of Skopal, Pokorný and Snášel — the
// hybrid metric access method the paper's related work discusses (Section
// 2.1): an M-tree whose routing entries additionally carry hyper-ring (HR)
// intervals of subtree distances to a set of global pivots, and whose leaf
// entries carry the pre-computed pivot distances (PD) themselves. The rings
// sharpen pruning the way the SPB-tree's mapped range region does, but the
// pre-computed distances are stored uncompressed inside the index — the
// storage overhead the paper contrasts with the SPB-tree's SFC encoding.
package pmtree

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/pivot"
)

// Options configures a PM-tree.
type Options struct {
	// Distance is the metric; required.
	Distance metric.DistanceFunc
	// Codec decodes objects from node pages; required.
	Codec metric.Codec
	// NumPivots is the number of global pivots for the hyper-rings; 0 means
	// 4 (the original paper's small-ring regime).
	NumPivots int
	// Store backs the tree; nil selects a fresh in-memory store.
	Store page.Store
	// CacheSize is the buffer-cache capacity (default 32; negative
	// disables).
	CacheSize int
	// Seed seeds sampling; 0 means 1.
	Seed int64
}

// Tree is a disk-based PM-tree.
type Tree struct {
	dist   *metric.Counter
	codec  metric.Codec
	store  *page.Cache
	rng    *rand.Rand
	pivots []metric.Object

	rootPage page.ID
	rootHR   []ring
	hasRoot  bool
	count    int
}

// ring is a [min, max] interval of distances to one global pivot.
type ring struct{ lo, hi float64 }

func emptyRings(n int) []ring {
	rs := make([]ring, n)
	for i := range rs {
		rs[i] = ring{lo: math.Inf(1), hi: math.Inf(-1)}
	}
	return rs
}

func (r *ring) expand(d float64) {
	if d < r.lo {
		r.lo = d
	}
	if d > r.hi {
		r.hi = d
	}
}

func expandRings(dst []ring, src []ring) {
	for i := range dst {
		if src[i].lo < dst[i].lo {
			dst[i].lo = src[i].lo
		}
		if src[i].hi > dst[i].hi {
			dst[i].hi = src[i].hi
		}
	}
}

// ringsPrune reports whether the query ball (qp, r) misses the hyper-rings:
// some pivot ring lies entirely outside [qp_t − r, qp_t + r].
func ringsPrune(qp []float64, r float64, hr []ring) bool {
	for t, rg := range hr {
		if qp[t]-r > rg.hi || qp[t]+r < rg.lo {
			return true
		}
	}
	return false
}

// ringsLowerBound returns the HR-based lower bound on d(q, o) for any o in
// the subtree.
func ringsLowerBound(qp []float64, hr []ring) float64 {
	var m float64
	for t, rg := range hr {
		if d := qp[t] - rg.hi; d > m {
			m = d
		}
		if d := rg.lo - qp[t]; d > m {
			m = d
		}
	}
	return m
}

// pdPrune reports whether a leaf entry's pre-computed pivot distances prove
// d(q, o) > r.
func pdPrune(qp []float64, pd []float64, r float64) bool {
	for t := range qp {
		if math.Abs(qp[t]-pd[t]) > r {
			return true
		}
	}
	return false
}

// entry is the in-memory node entry. Leaf entries carry pd; routing entries
// carry hr, the covering radius and the child page.
type entry struct {
	obj     metric.Object
	objLen  int
	dParent float64
	radius  float64
	child   page.ID
	isLeaf  bool
	pd      []float64 // leaf: d(obj, pivot_t)
	hr      []ring    // routing: subtree distance rings
}

type node struct {
	page    page.ID
	leaf    bool
	entries []entry
}

const noPage = ^page.ID(0)

// New creates an empty PM-tree. Pivots are selected at BulkLoad (or first
// Insert) time from the data.
func New(opts Options) (*Tree, error) {
	if opts.Distance == nil || opts.Codec == nil {
		return nil, fmt.Errorf("pmtree: Distance and Codec are required")
	}
	store := opts.Store
	if store == nil {
		store = page.NewMemStore()
	}
	cs := opts.CacheSize
	if cs == 0 {
		cs = 32
	}
	if cs < 0 {
		cs = 0
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Tree{
		dist:     metric.NewCounter(opts.Distance),
		codec:    opts.Codec,
		store:    page.NewCache(store, cs),
		rng:      rand.New(rand.NewSource(seed)),
		rootPage: noPage,
	}, nil
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.count }

// Pivots returns the global pivot set.
func (t *Tree) Pivots() []metric.Object { return t.pivots }

// ResetStats zeroes I/O and distance counters and flushes the cache.
func (t *Tree) ResetStats() {
	t.store.Stats().Reset()
	t.dist.Reset()
	t.store.Flush()
}

// TakeStats reads (page accesses, distance computations) since the reset.
func (t *Tree) TakeStats() (pa, compdists int64) {
	return t.store.Stats().Accesses(), t.dist.Count()
}

// StorageBytes returns the tree's page footprint.
func (t *Tree) StorageBytes() int64 {
	return int64(t.store.NumPages()) * page.Size
}

// selectPivots initializes the global pivots (HF, as the PM-tree authors
// use) from a data sample; quiet, matching the harness accounting where
// construction compdists count the mapping work.
func (t *Tree) selectPivots(objs []metric.Object, k int) error {
	if k == 0 {
		k = 4
	}
	t.pivots = pivot.HF{}.Select(objs, t.dist.Unwrap(), k, t.rng)
	if len(t.pivots) == 0 {
		return fmt.Errorf("pmtree: pivot selection failed")
	}
	return nil
}

// computePD fills the pre-computed pivot distances of one object.
func (t *Tree) computePD(o metric.Object) []float64 {
	pd := make([]float64, len(t.pivots))
	for i, p := range t.pivots {
		pd[i] = t.dist.Distance(o, p)
	}
	return pd
}

// queryPD computes d(q, pivot_t) once per query.
func (t *Tree) queryPD(q metric.Object) []float64 {
	qp := make([]float64, len(t.pivots))
	for i, p := range t.pivots {
		qp[i] = t.dist.Distance(q, p)
	}
	return qp
}

// Result is one search answer.
type Result struct {
	Object metric.Object
	Dist   float64
}

// RangeQuery returns every object within r of q, pruning subtrees by
// hyper-rings and covering balls and leaf entries by pre-computed distances.
func (t *Tree) RangeQuery(q metric.Object, r float64) ([]Result, error) {
	if !t.hasRoot || r < 0 {
		return nil, nil
	}
	qp := t.queryPD(q)
	var out []Result
	if err := t.rangeSearch(t.rootPage, q, qp, r, 0, true, &out); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID() < out[j].Object.ID() })
	return out, nil
}

func (t *Tree) rangeSearch(pg page.ID, q metric.Object, qp []float64, r, dQParent float64, atRoot bool, out *[]Result) error {
	n, err := t.readNode(pg)
	if err != nil {
		return err
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !atRoot && math.Abs(dQParent-e.dParent) > r+e.radius {
			continue
		}
		if n.leaf {
			if pdPrune(qp, e.pd, r) {
				continue // pre-computed distances prove the miss, no computation
			}
			if d := t.dist.Distance(q, e.obj); d <= r {
				*out = append(*out, Result{Object: e.obj, Dist: d})
			}
			continue
		}
		if ringsPrune(qp, r, e.hr) {
			continue // hyper-ring pruning, no computation
		}
		d := t.dist.Distance(q, e.obj)
		if d <= r+e.radius {
			if err := t.rangeSearch(e.child, q, qp, r, d, false, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// KNN returns the k nearest neighbors, best-first over the maximum of the
// ball and hyper-ring lower bounds.
func (t *Tree) KNN(q metric.Object, k int) ([]Result, error) {
	if !t.hasRoot || k <= 0 {
		return nil, nil
	}
	qp := t.queryPD(q)
	res := &topK{k: k}
	pq := &pqueue{}
	heap.Push(pq, pqItem{dmin: 0, page: t.rootPage, atRoot: true})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(pqItem)
		if item.dmin >= res.bound() {
			break
		}
		n, err := t.readNode(item.page)
		if err != nil {
			return nil, err
		}
		for i := range n.entries {
			e := &n.entries[i]
			if !item.atRoot && math.Abs(item.dParent-e.dParent)-e.radius >= res.bound() {
				continue
			}
			if n.leaf {
				if lb := pdLowerBound(qp, e.pd); lb >= res.bound() {
					continue
				}
				d := t.dist.Distance(q, e.obj)
				res.offer(Result{Object: e.obj, Dist: d})
				continue
			}
			if lb := ringsLowerBound(qp, e.hr); lb >= res.bound() {
				continue
			}
			d := t.dist.Distance(q, e.obj)
			dmin := math.Max(0, d-e.radius)
			if hrLB := ringsLowerBound(qp, e.hr); hrLB > dmin {
				dmin = hrLB
			}
			if dmin < res.bound() {
				heap.Push(pq, pqItem{dmin: dmin, page: e.child, dParent: d})
			}
		}
	}
	out := res.items
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID() < out[j].Object.ID()
	})
	return out, nil
}

// pdLowerBound is max_t |d(q,p_t) − d(o,p_t)|.
func pdLowerBound(qp, pd []float64) float64 {
	var m float64
	for t := range qp {
		if d := math.Abs(qp[t] - pd[t]); d > m {
			m = d
		}
	}
	return m
}

type pqItem struct {
	dmin    float64
	page    page.ID
	dParent float64
	atRoot  bool
}

type pqueue []pqItem

func (h pqueue) Len() int            { return len(h) }
func (h pqueue) Less(i, j int) bool  { return h[i].dmin < h[j].dmin }
func (h pqueue) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pqueue) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pqueue) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type topK struct {
	k     int
	items []Result
}

func (r *topK) bound() float64 {
	if len(r.items) < r.k {
		return math.Inf(1)
	}
	return r.items[0].Dist
}

func (r *topK) offer(x Result) {
	if len(r.items) < r.k {
		r.items = append(r.items, x)
		i := len(r.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if r.items[p].Dist >= r.items[i].Dist {
				break
			}
			r.items[p], r.items[i] = r.items[i], r.items[p]
			i = p
		}
		return
	}
	if x.Dist >= r.items[0].Dist {
		return
	}
	r.items[0] = x
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < len(r.items) && r.items[l].Dist > r.items[big].Dist {
			big = l
		}
		if rr < len(r.items) && r.items[rr].Dist > r.items[big].Dist {
			big = rr
		}
		if big == i {
			break
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}
