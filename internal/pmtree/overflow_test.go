package pmtree

import (
	"math/rand"
	"testing"

	"spbtree/internal/metric"
)

// TestBulkLoadVariableSizeObjects reproduces the internal-node overflow that
// variable-length words triggered (node 771 overflows page): long routing
// objects must spill into an extra level instead of failing.
func TestBulkLoadVariableSizeObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	objs := make([]metric.Object, 8000)
	for i := range objs {
		n := 1 + rng.Intn(34)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		objs[i] = metric.NewStr(uint64(i), string(b))
	}
	dist := metric.EditDistance{MaxLen: 34}
	tr, err := New(Options{Distance: dist, Codec: metric.StrCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	got, err := tr.RangeQuery(objs[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != bfRange(objs, objs[0], 2, dist) {
		t.Fatal("range mismatch after spill packing")
	}
	nn, err := tr.KNN(objs[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 10 {
		t.Fatalf("kNN returned %d", len(nn))
	}
}
