package pmtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"spbtree/internal/page"
)

// On-disk node layout:
//
//	byte 0    flags: bit 0 = leaf
//	bytes 1-2 entry count
//	bytes 3-7 reserved
//	leaf entry:    id u64 | objLen u32 | obj | dParent f64 | pd np×f64
//	routing entry: id u64 | objLen u32 | obj | dParent f64 | radius f64 |
//	               child u32 | hr 2·np×f64
//
// np is the tree's global pivot count; it is fixed at build time, so entry
// widths are implied.
const nodeHeader = 8

func (t *Tree) leafEntryBytes(objLen int) int {
	return 8 + 4 + objLen + 8 + 8*len(t.pivots)
}

func (t *Tree) routingEntryBytes(objLen int) int {
	return 8 + 4 + objLen + 8 + 8 + 4 + 16*len(t.pivots)
}

func (t *Tree) entryBytes(e *entry) int {
	if e.isLeaf {
		return t.leafEntryBytes(e.objLen)
	}
	return t.routingEntryBytes(e.objLen)
}

func (t *Tree) nodeBytes(entries []entry) int {
	n := nodeHeader
	for i := range entries {
		n += t.entryBytes(&entries[i])
	}
	return n
}

func (t *Tree) writeNode(n *node) error {
	var buf [page.Size]byte
	if n.leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	off := nodeHeader
	for i := range n.entries {
		e := &n.entries[i]
		payload := e.obj.AppendBinary(nil)
		if off+t.entryBytes(e) > page.Size {
			return fmt.Errorf("pmtree: node %d overflows page", n.page)
		}
		binary.LittleEndian.PutUint64(buf[off:], e.obj.ID())
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(payload)))
		copy(buf[off+12:], payload)
		p := off + 12 + len(payload)
		binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(e.dParent))
		p += 8
		if n.leaf {
			for _, d := range e.pd {
				binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(d))
				p += 8
			}
		} else {
			binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(e.radius))
			binary.LittleEndian.PutUint32(buf[p+8:], uint32(e.child))
			p += 12
			for _, rg := range e.hr {
				binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(rg.lo))
				binary.LittleEndian.PutUint64(buf[p+8:], math.Float64bits(rg.hi))
				p += 16
			}
		}
		off = p
	}
	if err := t.store.Write(n.page, buf[:]); err != nil {
		return fmt.Errorf("pmtree: write node: %w", err)
	}
	return nil
}

func (t *Tree) readNode(pg page.ID) (*node, error) {
	var buf [page.Size]byte
	if err := t.store.Read(pg, buf[:]); err != nil {
		return nil, fmt.Errorf("pmtree: read node: %w", err)
	}
	n := &node{page: pg, leaf: buf[0]&1 != 0}
	cnt := int(binary.LittleEndian.Uint16(buf[1:3]))
	np := len(t.pivots)
	n.entries = make([]entry, cnt)
	off := nodeHeader
	for i := 0; i < cnt; i++ {
		if off+12 > page.Size {
			return nil, fmt.Errorf("pmtree: corrupt node %d", pg)
		}
		id := binary.LittleEndian.Uint64(buf[off:])
		objLen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		if objLen < 0 || off+12+objLen > page.Size {
			return nil, fmt.Errorf("pmtree: corrupt node %d: objLen %d", pg, objLen)
		}
		obj, err := t.codec.Decode(id, buf[off+12:off+12+objLen])
		if err != nil {
			return nil, fmt.Errorf("pmtree: node %d entry %d: %w", pg, i, err)
		}
		e := &n.entries[i]
		e.obj = obj
		e.objLen = objLen
		e.isLeaf = n.leaf
		p := off + 12 + objLen
		if p+8 > page.Size {
			return nil, fmt.Errorf("pmtree: corrupt node %d", pg)
		}
		e.dParent = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		if n.leaf {
			if p+8*np > page.Size {
				return nil, fmt.Errorf("pmtree: corrupt leaf %d", pg)
			}
			e.pd = make([]float64, np)
			for j := range e.pd {
				e.pd[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
				p += 8
			}
		} else {
			if p+12+16*np > page.Size {
				return nil, fmt.Errorf("pmtree: corrupt routing entry in node %d", pg)
			}
			e.radius = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
			e.child = page.ID(binary.LittleEndian.Uint32(buf[p+8:]))
			p += 12
			e.hr = make([]ring, np)
			for j := range e.hr {
				e.hr[j].lo = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
				e.hr[j].hi = math.Float64frombits(binary.LittleEndian.Uint64(buf[p+8:]))
				p += 16
			}
		}
		off = p
	}
	return n, nil
}

func (t *Tree) allocNode(leaf bool) (*node, error) {
	pg, err := t.store.Alloc()
	if err != nil {
		return nil, fmt.Errorf("pmtree: alloc: %w", err)
	}
	return &node{page: pg, leaf: leaf}, nil
}
