package pmtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spbtree/internal/metric"
	"spbtree/internal/mtree"
)

func vectors(n, dim int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	return objs
}

func words(n int, seed int64) []metric.Object {
	rng := rand.New(rand.NewSource(seed))
	syl := []string{"an", "ber", "co", "du", "el", "fi", "gor", "hu"}
	objs := make([]metric.Object, n)
	for i := range objs {
		var w string
		for k := 0; k < 2+rng.Intn(3); k++ {
			w += syl[rng.Intn(len(syl))]
		}
		objs[i] = metric.NewStr(uint64(i), w)
	}
	return objs
}

func bfRange(objs []metric.Object, q metric.Object, r float64, d metric.DistanceFunc) int {
	n := 0
	for _, o := range objs {
		if d.Distance(q, o) <= r {
			n++
		}
	}
	return n
}

func bfKNN(objs []metric.Object, q metric.Object, k int, d metric.DistanceFunc) []float64 {
	ds := make([]float64, len(objs))
	for i, o := range objs {
		ds[i] = d.Distance(q, o)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func buildBulk(t *testing.T, objs []metric.Object, dist metric.DistanceFunc, codec metric.Codec) *Tree {
	t.Helper()
	tr, err := New(Options{Distance: dist, Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRangeMatchesBruteForce(t *testing.T) {
	objs := vectors(800, 6, 1)
	dist := metric.L2(6)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 6})
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := objs[rng.Intn(len(objs))]
		r := 0.1 + 0.3*rng.Float64()
		got, err := tr.RangeQuery(q, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != bfRange(objs, q, r, dist) {
			t.Fatalf("trial %d (r=%v): got %d", trial, r, len(got))
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	objs := vectors(600, 5, 3)
	dist := metric.L2(5)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 5})
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 8, 32} {
		for trial := 0; trial < 8; trial++ {
			q := objs[rng.Intn(len(objs))]
			got, err := tr.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bfKNN(objs, q, k, dist)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results", k, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("k=%d dist[%d] = %v, want %v", k, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestWordsWorkload(t *testing.T) {
	objs := words(500, 5)
	dist := metric.EditDistance{MaxLen: 12}
	tr := buildBulk(t, objs, dist, metric.StrCodec{})
	for _, r := range []float64{1, 2, 4} {
		got, err := tr.RangeQuery(objs[3], r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != bfRange(objs, objs[3], r, dist) {
			t.Fatalf("r=%v mismatch", r)
		}
	}
}

func TestInsertThenQuery(t *testing.T) {
	objs := vectors(500, 4, 7)
	dist := metric.L2(4)
	tr := buildBulk(t, objs[:300], dist, metric.VectorCodec{Dim: 4})
	for _, o := range objs[300:] {
		if err := tr.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		q := objs[rng.Intn(len(objs))]
		got, err := tr.RangeQuery(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != bfRange(objs, q, 0.3, dist) {
			t.Fatal("after inserts: mismatch")
		}
		nn, err := tr.KNN(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		want := bfKNN(objs, q, 6, dist)
		for i := range nn {
			if math.Abs(nn[i].Dist-want[i]) > 1e-9 {
				t.Fatal("after inserts: kNN mismatch")
			}
		}
	}
}

// TestHyperRingsBeatPlainMTree: the PM-tree's point — hyper-rings prune
// distance computations the plain M-tree must perform — at the price of a
// larger index.
func TestHyperRingsBeatPlainMTree(t *testing.T) {
	objs := vectors(3000, 8, 9)
	dist := metric.L2(8)
	pm := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 8})
	mt, err := mtree.New(mtree.Options{Distance: dist, Codec: metric.VectorCodec{Dim: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	var pmCD, mtCD int64
	for qi := 0; qi < 20; qi++ {
		q := objs[qi*131]
		pm.ResetStats()
		if _, err := pm.RangeQuery(q, 0.25); err != nil {
			t.Fatal(err)
		}
		_, cd := pm.TakeStats()
		pmCD += cd
		mt.ResetStats()
		if _, err := mt.RangeQuery(q, 0.25); err != nil {
			t.Fatal(err)
		}
		_, cd = mt.TakeStats()
		mtCD += cd
	}
	if pmCD >= mtCD {
		t.Errorf("PM-tree compdists %d should beat M-tree %d", pmCD, mtCD)
	}
	// Per-entry storage is strictly larger (rings + PD); total page counts
	// also depend on clustering luck, so compare the guaranteed quantity.
	if pm.leafEntryBytes(64) <= 64+20 {
		t.Error("PM-tree leaf entries should carry the PD overhead")
	}
}

func TestValidationAndEmpty(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing options accepted")
	}
	tr, err := New(Options{Distance: metric.L2(2), Codec: metric.VectorCodec{Dim: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := tr.RangeQuery(metric.NewVector(0, []float64{0, 0}), 1); err != nil || res != nil {
		t.Errorf("empty tree query: %v %v", res, err)
	}
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(metric.NewVector(0, []float64{0.5, 0.5})); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(vectors(5, 2, 1)); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
	if got, err := tr.KNN(metric.NewVector(1, []float64{0, 0}), 1); err != nil || len(got) != 1 {
		t.Errorf("single-object kNN: %v %v", got, err)
	}
}

func TestDuplicateHeavy(t *testing.T) {
	objs := make([]metric.Object, 300)
	for i := range objs {
		objs[i] = metric.NewVector(uint64(i), []float64{0.5, 0.5})
	}
	dist := metric.L2(2)
	tr := buildBulk(t, objs, dist, metric.VectorCodec{Dim: 2})
	got, err := tr.RangeQuery(objs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("duplicates: %d of 300", len(got))
	}
}
