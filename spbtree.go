// Package spbtree is the public API of this library: a disk-based metric
// index — the Space-filling curve and Pivot-based B+-tree (SPB-tree) of
// Chen, Gao, Li, Jensen and Chen ("Efficient Metric Indexing for Similarity
// Search", ICDE 2015, extended with similarity joins) — for similarity
// search and similarity joins over any data type with any distance function
// satisfying the triangle inequality.
//
// Quick start:
//
//	objs := []spbtree.Object{
//		spbtree.NewStr(0, "defoliate"),
//		spbtree.NewStr(1, "defoliated"),
//		spbtree.NewStr(2, "citrate"),
//	}
//	tree, err := spbtree.Build(objs, spbtree.Options{
//		Distance:  spbtree.EditDistance{MaxLen: 16},
//		Codec:     spbtree.StrCodec{},
//		NumPivots: 2,
//	})
//	res, err := tree.RangeQuery(spbtree.NewStr(99, "defoliates"), 1)
//	nn, err := tree.KNN(spbtree.NewStr(99, "defoliates"), 3)
//
// For similarity joins, build two trees over the same mapped space with the
// Z-order curve and call Join:
//
//	tq, _ := spbtree.Build(Q, spbtree.Options{Distance: d, Codec: c, Curve: spbtree.ZOrder})
//	to, _ := spbtree.Build(O, spbtree.Options{Distance: d, Codec: c, Curve: spbtree.ZOrder, ShareMapping: tq})
//	pairs, _ := spbtree.Join(tq, to, eps)
//
// The implementation lives in internal packages; this package re-exports
// the user-facing surface via type aliases, so godoc for the concrete
// behaviour is on spbtree/internal/core and spbtree/internal/metric.
package spbtree

import (
	"context"
	"io"

	"spbtree/internal/core"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
	"spbtree/internal/obs"
	"spbtree/internal/page"
	"spbtree/internal/pivot"
	"spbtree/internal/sfc"
)

// Core index types.
type (
	// Tree is a built SPB-tree.
	Tree = core.Tree
	// Options configures Build.
	Options = core.Options
	// Result is one similarity-search answer.
	Result = core.Result
	// JoinPair is one similarity-join answer.
	JoinPair = core.JoinPair
	// Stats carries the paper's per-operation metrics (page accesses,
	// distance computations, wall time).
	Stats = core.Stats
	// CostEstimate carries the cost models' EDC/EPA predictions.
	CostEstimate = core.CostEstimate
	// TraversalStrategy selects incremental or greedy kNN traversal.
	TraversalStrategy = core.TraversalStrategy
	// NearestIter yields neighbors in ascending distance order, lazily.
	NearestIter = core.NearestIter
)

// Build constructs an SPB-tree over objs: it selects pivots, maps every
// object through the two-stage pivot-and-SFC mapping, writes the RAF in
// ascending SFC order and bulk-loads the B+-tree. Options.Distance and
// Options.Codec are required; every other option has the paper's default.
// See core.Build.
func Build(objs []Object, opts Options) (*Tree, error) { return core.Build(objs, opts) }

// Join computes the similarity join SJ(Q, O, ε) = {⟨q, o⟩ | d(q, o) ≤ ε}
// over two Z-order SPB-trees sharing one mapped space (build the second with
// Options.ShareMapping). Self-joins (tq == to) are allowed. See core.Join.
func Join(tq, to *Tree, eps float64) ([]JoinPair, error) { return core.Join(tq, to, eps) }

// EstimateJoin predicts a join's cost from the trees' cost models.
func EstimateJoin(tq, to *Tree, eps float64) (CostEstimate, error) {
	return core.EstimateJoin(tq, to, eps)
}

// kNN traversal strategies (paper Table 5).
const (
	Incremental = core.Incremental
	Greedy      = core.Greedy
)

// ErrNotFound is returned by Tree.Delete and Tree.Get for missing objects.
var ErrNotFound = core.ErrNotFound

// OpenOptions configures Open.
type OpenOptions = core.OpenOptions

// Open reopens a tree persisted with Tree.WriteMeta against its two page
// stores. The caller supplies the stores (OpenOptions.IndexStore/DataStore)
// plus the same Distance and Codec the tree was built with; the meta stream
// restores the pivot table, quantization and bookkeeping without a single
// distance computation. Meta corruption is reported as ErrCorruptMeta.
// See core.Open.
func Open(meta io.Reader, opts OpenOptions) (*Tree, error) { return core.Open(meta, opts) }

// Durability and corruption resilience. Trees persisted with
// Tree.SaveAtomic live in a directory of three files (index.pages,
// data.pages, tree.meta); the meta carries a checksummed footer plus a
// CRC32-C for every page it references, so crashes and silent media
// corruption are detected — queries degrade to partial results with a typed
// error rather than returning wrong answers. Load reopens such a directory,
// Tree.VerifyIntegrity audits it exhaustively, and Repair rebuilds it from
// whatever objects survive.
type (
	// LoadOptions configures Load and Repair.
	LoadOptions = core.LoadOptions
	// RepairReport summarizes a Repair run.
	RepairReport = core.RepairReport
	// Corruption is one finding of Tree.VerifyIntegrity.
	Corruption = core.Corruption
	// IntegrityError aggregates every corruption VerifyIntegrity found.
	IntegrityError = core.IntegrityError
	// CorruptError reports a page whose content failed checksum validation.
	CorruptError = page.CorruptError
)

var (
	// ErrCorrupt matches (errors.Is) every checksum-validation failure.
	ErrCorrupt = page.ErrCorrupt
	// ErrCorruptMeta matches (errors.Is) every meta-validation failure
	// reported by Open and Load.
	ErrCorruptMeta = core.ErrCorruptMeta
)

// Load reopens an index directory written by Tree.SaveAtomic: it validates
// the meta footer's checksum, opens the two page files and verifies spot
// checks before handing back a queryable tree. A directory that fails
// validation is reported with ErrCorruptMeta or ErrCorrupt (try Repair).
// See core.Load.
func Load(dir string, opts LoadOptions) (*Tree, error) { return core.Load(dir, opts) }

// Repair rebuilds an index directory from the objects that survive in its
// RAF — salvaging records sequentially, re-deriving keys through the pivot
// mapping and bulk-loading a fresh B+-tree — then atomically replaces the
// old files. The report says how many objects were recovered and lost.
// See core.Repair.
func Repair(dir string, opts LoadOptions) (RepairReport, error) { return core.Repair(dir, opts) }

// Page storage for persistent trees.
type (
	// PageStore is the page-granular storage interface trees run on.
	PageStore = page.Store
	// FileStore is a file-backed PageStore.
	FileStore = page.FileStore
	// MemStore is an in-memory PageStore.
	MemStore = page.MemStore
)

var (
	// NewMemStore returns an empty in-memory page store.
	NewMemStore = page.NewMemStore
	// NewFileStore creates (or truncates) a file-backed page store.
	NewFileStore = page.NewFileStore
	// OpenFileStore opens an existing file-backed page store.
	OpenFileStore = page.OpenFileStore
)

// Metric-space surface: objects, distances, codecs.
type (
	// Object is an element of a metric space.
	Object = metric.Object
	// DistanceFunc is a metric (symmetric, non-negative, identity,
	// triangle inequality).
	DistanceFunc = metric.DistanceFunc
	// BoundedDistanceFunc is a DistanceFunc with a threshold-aware kernel
	// (DistanceAtMost) that may abandon an evaluation once the distance
	// provably exceeds the caller's bound; trees use it automatically
	// throughout verification. See metric.BoundedDistanceFunc.
	BoundedDistanceFunc = metric.BoundedDistanceFunc
	// BatchDistanceFunc is a DistanceFunc with a blocked batch kernel
	// (BatchDistanceAtMost) that evaluates one query against a block of
	// candidates, hoisting per-query work out of the per-candidate loop;
	// trees use it automatically wherever verification lands a whole leaf
	// page of candidates. See metric.BatchDistanceFunc.
	BatchDistanceFunc = metric.BatchDistanceFunc
	// Codec decodes objects from their serialized payloads.
	Codec = metric.Codec

	// Vector is a real-valued vector object.
	Vector = metric.Vector
	// Vector32 is a real-valued vector object stored at float32 precision —
	// half the storage and verify-stage memory traffic of Vector, with
	// distances exact over the rounded coordinates. See metric.Vector32 for
	// the tolerance contract against a float64 dataset.
	Vector32 = metric.Vector32
	// Str is a string object.
	Str = metric.Str
	// BitString is a fixed-width binary signature object.
	BitString = metric.BitString
	// Seq is a DNA sequence object with a cached tri-gram profile.
	Seq = metric.Seq

	// LpNorm is the Minkowski distance of configurable order.
	LpNorm = metric.LpNorm
	// LInf is the Chebyshev distance.
	LInf = metric.LInf
	// EditDistance is the Levenshtein distance.
	EditDistance = metric.EditDistance
	// Hamming is the Hamming distance over bit signatures.
	Hamming = metric.Hamming
	// TrigramAngular is the angular distance over tri-gram profiles.
	TrigramAngular = metric.TrigramAngular
	// Set is a set-valued object.
	Set = metric.Set
	// Jaccard is the Jaccard distance over sets.
	Jaccard = metric.Jaccard

	// VectorCodec decodes Vector payloads.
	VectorCodec = metric.VectorCodec
	// Vector32Codec decodes Vector32 payloads.
	Vector32Codec = metric.Vector32Codec
	// StrCodec decodes Str payloads.
	StrCodec = metric.StrCodec
	// BitStringCodec decodes BitString payloads.
	BitStringCodec = metric.BitStringCodec
	// SeqCodec decodes Seq payloads.
	SeqCodec = metric.SeqCodec
	// SetCodec decodes Set payloads.
	SetCodec = metric.SetCodec
)

// Threshold-aware evaluation helpers.
var (
	// DistanceAtMost evaluates fn's distance under bound t, through the
	// metric's threshold-aware kernel when it implements one and exactly
	// otherwise. See metric.DistanceAtMost.
	DistanceAtMost = metric.DistanceAtMost
	// IsBounded reports whether a DistanceFunc implements a threshold-aware
	// kernel. See metric.IsBounded.
	IsBounded = metric.IsBounded
	// BatchDistanceAtMost evaluates fn against a block of candidates, through
	// the metric's batch kernel when it implements one and a scalar loop
	// otherwise. See metric.BatchDistanceAtMost.
	BatchDistanceAtMost = metric.BatchDistanceAtMost
	// IsBatch reports whether a DistanceFunc implements a blocked batch
	// kernel. See metric.IsBatch.
	IsBatch = metric.IsBatch
)

// Object constructors.
var (
	// NewVector returns a vector object.
	NewVector = metric.NewVector
	// NewVector32 returns a float32 vector object.
	NewVector32 = metric.NewVector32
	// NewVector32From64 returns a float32 vector object with each coordinate
	// rounded from float64.
	NewVector32From64 = metric.NewVector32From64
	// NewStr returns a string object.
	NewStr = metric.NewStr
	// NewBitString returns a bit-signature object.
	NewBitString = metric.NewBitString
	// NewSeq returns a DNA-sequence object.
	NewSeq = metric.NewSeq
	// NewSet returns a set object (elements copied, sorted, deduplicated).
	NewSet = metric.NewSet
	// L2 returns the Euclidean distance over dim-dimensional unit vectors.
	L2 = metric.L2
	// L5 returns the Minkowski-5 distance over dim-dimensional unit vectors.
	L5 = metric.L5
)

// Space-filling curve kinds for Options.Curve.
const (
	// Hilbert offers the best clustering and is the default for search.
	Hilbert = sfc.Hilbert
	// ZOrder is coordinatewise monotone and required for similarity joins.
	ZOrder = sfc.ZOrder
)

// Distributed extension: partitioned SPB-trees with parallel scatter-gather
// queries (the paper's future-work direction).
type (
	// Forest is a hash-partitioned SPB-tree whose shards share one pivot
	// mapping and answer queries in parallel.
	Forest = forest.Forest
	// ForestOptions configures BuildForest.
	ForestOptions = forest.Options
)

// BuildForest partitions objs across shards and builds one SPB-tree per
// shard. See forest.Build.
func BuildForest(objs []Object, opts ForestOptions) (*Forest, error) {
	return forest.Build(objs, opts)
}

// JoinForests computes SJ(Q, O, ε) between two forests sharing one mapped
// space, all shard pairs in parallel. See forest.Join.
func JoinForests(fq, fo *Forest, eps float64) ([]JoinPair, error) {
	return forest.Join(fq, fo, eps)
}

// Observability surface: per-query stage statistics, aggregate metrics and
// structured tracing hooks. DESIGN.md §7 defines every counter and maps it
// to the paper's metrics. The WithStats entry points (e.g.
// Tree.RangeSearchWithStats, Tree.KNNWithStats, JoinWithStats) return a
// QueryStats per query; Tree.Metrics and Tree.PublishExpvar expose the
// running aggregates; Tree.SetTracer installs a TraceEvent hook on every
// storage layer (no-op and allocation-free when unset).
type (
	// QueryStats is one query's per-stage cost breakdown: pruning counts,
	// compdists, index/data page accesses, cache hits and stage wall clocks.
	QueryStats = core.QueryStats
	// MetricsRegistry aggregates per-operation metrics over a tree's life.
	MetricsRegistry = obs.Registry
	// OpMetrics is one operation's aggregate counters and latency histogram.
	OpMetrics = obs.OpMetrics
	// OpSnapshot is a consistent-enough copy of an OpMetrics, JSON-taggable.
	OpSnapshot = obs.OpSnapshot
	// LatencyHistogram is a fixed-bucket (powers of two, 1µs…) histogram.
	LatencyHistogram = obs.Histogram
	// HistSnapshot is a histogram copy with bucket upper edges in ns.
	HistSnapshot = obs.HistSnapshot
	// Tracer receives structured storage-layer events; implementations must
	// be cheap and must not retain the Event past the call.
	Tracer = obs.Tracer
	// NopTracer is a Tracer that does nothing.
	NopTracer = obs.NopTracer
	// TraceEvent is one storage-layer event (kind, source, page, offset).
	TraceEvent = obs.Event
	// TraceEventKind enumerates the event kinds.
	TraceEventKind = obs.EventKind
	// TraceSrc labels an event's storage side: index (B+-tree) or data (RAF).
	TraceSrc = obs.Src
)

// Trace event kinds and sources, re-exported for Tracer implementations.
const (
	EvPageRead   = obs.EvPageRead
	EvPageWrite  = obs.EvPageWrite
	EvCacheHit   = obs.EvCacheHit
	EvCacheMiss  = obs.EvCacheMiss
	EvNodeRead   = obs.EvNodeRead
	EvRecordRead = obs.EvRecordRead

	SrcIndex = obs.SrcIndex
	SrcData  = obs.SrcData
)

// Operation names used in QueryStats.Op and the metrics registry.
const (
	OpRange     = core.OpRange
	OpKNN       = core.OpKNN
	OpKNNApprox = core.OpKNNApprox
	OpKNNGraph  = core.OpKNNGraph
	OpJoin      = core.OpJoin
)

// Approximate graph tier: an NN-descent k-neighbor graph over the tree's
// live objects, queried by greedy beam search (DESIGN.md §14). Build with
// Tree.BuildGraph / BuildGraphCtx, query with Tree.KNNGraph and its
// Ctx/WithStats variants; Tree.HasGraph reports liveness. The tier is
// opt-in and degrades, never fails: graph queries return ErrNoGraph when no
// graph is live (callers fall back to exact kNN — the forest and spbserve's
// mode=ann do so automatically), a deleted object never surfaces (the
// search merges the durable delta buffer and tombstone filter), and
// SaveAtomic/Load persist and reattach the graph beside the tree meta.
type (
	// GraphOptions configures Tree.BuildGraph (zero value = defaults).
	GraphOptions = core.GraphOptions
	// SearchOptions tunes one approximate kNN query; Ef is the beam width.
	SearchOptions = core.SearchOptions
)

// DefaultEf is the beam width used when SearchOptions.Ef is zero.
const DefaultEf = core.DefaultEf

var (
	// ErrNoGraph matches graph queries on a tree with no live graph.
	ErrNoGraph = core.ErrNoGraph
	// ErrGraphStale matches BuildGraph attempts that raced a structural
	// mutation; rebuild under a write-quiet window.
	ErrGraphStale = core.ErrGraphStale
)

// JoinWithStats computes the similarity join like Join and additionally
// returns the join's QueryStats (page accesses aggregate both trees' stores,
// once for a self-join). See core.JoinWithStats.
func JoinWithStats(tq, to *Tree, eps float64) ([]JoinPair, QueryStats, error) {
	return core.JoinWithStats(tq, to, eps)
}

// Cancellation surface. Every search entry point has a context-honoring
// variant (Tree.RangeSearchCtx, Tree.KNNCtx, Tree.KNNApproxCtx, JoinCtx and
// their WithStats forms): cancellation is checked at leaf-scan and
// verification granularity, and an interrupted query returns the answers
// verified so far together with an error matching ErrCanceled — partial
// results plus a typed error, the same contract the durability layer uses
// for corrupt pages. The spbserve HTTP service builds its per-request
// deadlines on this surface.
var (
	// ErrCanceled matches (errors.Is) every query abandoned because its
	// context was canceled or its deadline expired; the context's own cause
	// (e.g. context.DeadlineExceeded) stays matchable through it.
	ErrCanceled = core.ErrCanceled
)

// JoinCtx computes the similarity join like Join, honoring ctx: cancellation
// is checked at every merge step and before every distance computation, and
// the pairs found so far are returned with an error matching ErrCanceled.
// See core.JoinCtx.
func JoinCtx(ctx context.Context, tq, to *Tree, eps float64) ([]JoinPair, error) {
	return core.JoinCtx(ctx, tq, to, eps)
}

// JoinWithStatsCtx is JoinCtx plus the join's QueryStats. See
// core.JoinWithStatsCtx.
func JoinWithStatsCtx(ctx context.Context, tq, to *Tree, eps float64) ([]JoinPair, QueryStats, error) {
	return core.JoinWithStatsCtx(ctx, tq, to, eps)
}

// Pivot selection algorithms for Options.Selector.
type (
	// PivotSelector chooses pivots from a dataset.
	PivotSelector = pivot.Selector
	// HFI is the paper's HF-based incremental selector (the default).
	HFI = pivot.HFI
	// HF is the hull-of-foci outlier selector of the Omni-family.
	HF = pivot.HF
	// FFT is farthest-first traversal.
	FFT = pivot.FFT
	// SSS is sparse spatial selection.
	SSS = pivot.SSS
	// Spacing is minimum-correlation vantage selection.
	Spacing = pivot.Spacing
	// PCASelector is variance-maximizing selection.
	PCASelector = pivot.PCA
	// RandomSelector picks pivots uniformly at random.
	RandomSelector = pivot.Random
)
