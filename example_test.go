package spbtree_test

import (
	"fmt"
	"sort"

	"spbtree"
)

// ExampleBuild indexes words under edit distance and runs the paper's
// running example queries (Section 4.1).
func ExampleBuild() {
	words := []string{"citrate", "defoliates", "defoliation", "defoliated", "defoliating", "defoliate"}
	objs := make([]spbtree.Object, len(words))
	for i, w := range words {
		objs[i] = spbtree.NewStr(uint64(i), w)
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance:  spbtree.EditDistance{MaxLen: 16},
		Codec:     spbtree.StrCodec{},
		NumPivots: 2,
	})
	if err != nil {
		panic(err)
	}

	res, err := tree.RangeQuery(spbtree.NewStr(100, "defoliate"), 1)
	if err != nil {
		panic(err)
	}
	var out []string
	for _, r := range res {
		out = append(out, r.Object.(*spbtree.Str).S)
	}
	sort.Strings(out)
	fmt.Println("RQ(defoliate, 1):", out)

	nn, err := tree.KNN(spbtree.NewStr(100, "defoliate"), 2)
	if err != nil {
		panic(err)
	}
	names := []string{nn[0].Object.(*spbtree.Str).S, nn[1].Object.(*spbtree.Str).S}
	sort.Strings(names)
	fmt.Println("2NN(defoliate):", names)
	// Three words are at edit distance ≤ 1; the k-th slot tie between
	// "defoliates" (id 1) and "defoliated" (id 3) goes to the smaller id.
	// Output:
	// RQ(defoliate, 1): [defoliate defoliated defoliates]
	// 2NN(defoliate): [defoliate defoliates]
}

// ExampleJoin runs the paper's Definition 4 example: a similarity join of
// two word sets with edit distance 1.
func ExampleJoin() {
	mk := func(base uint64, words ...string) []spbtree.Object {
		objs := make([]spbtree.Object, len(words))
		for i, w := range words {
			objs[i] = spbtree.NewStr(base+uint64(i), w)
		}
		return objs
	}
	Q := mk(0, "defoliate", "defoliates", "defoliation")
	O := mk(100, "citrate", "defoliated", "defoliating")
	d := spbtree.EditDistance{MaxLen: 16}

	tq, err := spbtree.Build(Q, spbtree.Options{
		Distance: d, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, NumPivots: 2,
	})
	if err != nil {
		panic(err)
	}
	to, err := spbtree.Build(O, spbtree.Options{
		Distance: d, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, ShareMapping: tq,
	})
	if err != nil {
		panic(err)
	}
	pairs, err := spbtree.Join(tq, to, 1)
	if err != nil {
		panic(err)
	}
	var lines []string
	for _, p := range pairs {
		lines = append(lines, fmt.Sprintf("⟨%s, %s⟩ d=%.0f", p.Q.(*spbtree.Str).S, p.O.(*spbtree.Str).S, p.Dist))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// The paper's Section 5.1 example reports only the first pair; the
	// second is also within edit distance 1 (one substitution, s→d).
	// Output:
	// ⟨defoliate, defoliated⟩ d=1
	// ⟨defoliates, defoliated⟩ d=1
}

// ExampleTree_NearestIter consumes neighbors lazily in distance order.
func ExampleTree_NearestIter() {
	objs := []spbtree.Object{
		spbtree.NewVector(0, []float64{0.1, 0.1}),
		spbtree.NewVector(1, []float64{0.2, 0.1}),
		spbtree.NewVector(2, []float64{0.9, 0.9}),
		spbtree.NewVector(3, []float64{0.15, 0.1}),
	}
	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance: spbtree.L2(2), Codec: spbtree.VectorCodec{Dim: 2}, NumPivots: 2,
	})
	if err != nil {
		panic(err)
	}
	it := tree.NearestIter(spbtree.NewVector(9, []float64{0.1, 0.1}))
	for i := 0; i < 3; i++ {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("id=%d d=%.2f\n", r.Object.ID(), r.Dist)
	}
	// Output:
	// id=0 d=0.00
	// id=3 d=0.05
	// id=1 d=0.10
}
