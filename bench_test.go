// Benchmarks regenerating the paper's evaluation as testing.B targets — one
// benchmark family per table/figure, each reporting the paper's metrics as
// custom units: PA/op (page accesses) and dists/op (distance computations)
// alongside Go's ns/op. The cmd/spbbench harness prints the same experiments
// as full tables; these benches are the `go test -bench=.` entry points
// DESIGN.md §4 references.
package spbtree_test

import (
	"fmt"
	"testing"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/join"
	"spbtree/internal/metric"
	"spbtree/internal/mindex"
	"spbtree/internal/mtree"
	"spbtree/internal/omni"
	"spbtree/internal/pivot"
	"spbtree/internal/pmtree"
	"spbtree/internal/sfc"
)

const (
	benchN    = 4000 // objects per dataset (the paper uses 112K-1M)
	benchSeed = 1
)

// queryCycler hands out query objects round-robin.
type queryCycler struct {
	qs []metric.Object
	i  int
}

func (c *queryCycler) next() metric.Object {
	q := c.qs[c.i%len(c.qs)]
	c.i++
	return q
}

func buildCoreTree(b *testing.B, ds dataset.Dataset, opts core.Options) *core.Tree {
	b.Helper()
	opts.Distance = ds.Distance
	opts.Codec = ds.Codec
	if opts.Seed == 0 {
		opts.Seed = benchSeed
	}
	t, err := core.Build(ds.Objects, opts)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// reportSPB runs fn b.N times against tree and reports PA and dists per op.
func reportSPB(b *testing.B, tree *core.Tree, fn func(q metric.Object) error, qs []metric.Object) {
	b.Helper()
	cyc := &queryCycler{qs: qs}
	var pa, cd int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ResetStats()
		if err := fn(cyc.next()); err != nil {
			b.Fatal(err)
		}
		s := tree.TakeStats()
		pa += s.PageAccesses
		cd += s.DistanceComputations
	}
	b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
	b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
}

// BenchmarkTable4SFC — Table 4: kNN (k=8) under the Hilbert vs Z-order
// curve.
func BenchmarkTable4SFC(b *testing.B) {
	for _, dsName := range []string{"color", "words"} {
		ds, _ := dataset.ByName(dsName, benchN, benchSeed)
		for _, kind := range []sfc.Kind{sfc.Hilbert, sfc.ZOrder} {
			b.Run(fmt.Sprintf("%s/%v", ds.Name, kind), func(b *testing.B) {
				tree := buildCoreTree(b, ds, core.Options{Curve: kind})
				reportSPB(b, tree, func(q metric.Object) error {
					_, err := tree.KNN(q, 8)
					return err
				}, ds.Queries(100))
			})
		}
	}
}

// BenchmarkFig9Pivots — Fig. 9: pivot selection methods at the default
// |P| = 5, kNN k=8 on Color.
func BenchmarkFig9Pivots(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	for _, sel := range []pivot.Selector{pivot.HFI{}, pivot.HF{}, pivot.Spacing{}, pivot.PCA{}} {
		b.Run(sel.Name(), func(b *testing.B) {
			tree := buildCoreTree(b, ds, core.Options{Selector: sel})
			reportSPB(b, tree, func(q metric.Object) error {
				_, err := tree.KNN(q, 8)
				return err
			}, ds.Queries(100))
		})
	}
}

// BenchmarkFig10Cache — Fig. 10: kNN under varying buffer-cache sizes.
func BenchmarkFig10Cache(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	for _, cache := range []int{-1, 8, 32, 128} {
		name := fmt.Sprintf("cache=%d", cache)
		if cache < 0 {
			name = "cache=0"
		}
		b.Run(name, func(b *testing.B) {
			tree := buildCoreTree(b, ds, core.Options{CacheSize: cache})
			reportSPB(b, tree, func(q metric.Object) error {
				_, err := tree.KNN(q, 8)
				return err
			}, ds.Queries(100))
		})
	}
}

// BenchmarkTable5Traversal — Table 5: incremental vs greedy kNN traversal.
func BenchmarkTable5Traversal(b *testing.B) {
	for _, dsName := range []string{"color", "dna"} {
		n := benchN
		if dsName == "dna" {
			n = benchN / 2
		}
		ds, _ := dataset.ByName(dsName, n, benchSeed)
		tree := buildCoreTree(b, ds, core.Options{})
		for _, strat := range []core.TraversalStrategy{core.Incremental, core.Greedy} {
			b.Run(fmt.Sprintf("%s/%v", ds.Name, strat), func(b *testing.B) {
				tree.SetTraversal(strat)
				reportSPB(b, tree, func(q metric.Object) error {
					_, err := tree.KNN(q, 8)
					return err
				}, ds.Queries(100))
			})
		}
	}
}

// BenchmarkFig11Delta — Fig. 11: kNN under varying δ granularity.
func BenchmarkFig11Delta(b *testing.B) {
	ds, _ := dataset.ByName("synthetic", benchN, benchSeed)
	for _, delta := range []float64{0.001, 0.005, 0.009} {
		b.Run(fmt.Sprintf("delta=%.3f", delta), func(b *testing.B) {
			tree := buildCoreTree(b, ds, core.Options{DeltaFrac: delta})
			reportSPB(b, tree, func(q metric.Object) error {
				_, err := tree.KNN(q, 8)
				return err
			}, ds.Queries(100))
		})
	}
}

// BenchmarkTable6Build — Table 6: construction of each MAM.
func BenchmarkTable6Build(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	b.Run("SPB-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(ds.Objects, core.Options{
				Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("M-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, err := mtree.New(mtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			if err := t.BulkLoad(ds.Objects); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OmniR-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := omni.Build(ds.Objects, omni.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("M-Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mindex.Build(ds.Objects, mindex.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PM-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t, err := pmtree.New(pmtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			if err := t.BulkLoad(ds.Objects); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable7Update — Table 7: single-object insertion into each MAM.
func BenchmarkTable7Update(b *testing.B) {
	ds, _ := dataset.ByName("words", benchN, benchSeed)
	extra := dataset.Words(100000, benchSeed+999)
	b.Run("SPB-tree", func(b *testing.B) {
		tree := buildCoreTree(b, ds, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := extra.Objects[i%len(extra.Objects)].(*metric.Str)
			if err := tree.Insert(metric.NewStr(uint64(1_000_000+i), o.S)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("M-tree", func(b *testing.B) {
		t, err := mtree.New(mtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.BulkLoad(ds.Objects); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := extra.Objects[i%len(extra.Objects)].(*metric.Str)
			if err := t.Insert(metric.NewStr(uint64(1_000_000+i), o.S)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12Range — Fig. 12: range queries across the five MAMs at the
// default radius (8% of d+).
func BenchmarkFig12Range(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	r := 0.08 * ds.Distance.MaxDistance()
	qs := ds.Queries(100)
	b.Run("SPB-tree", func(b *testing.B) {
		tree := buildCoreTree(b, ds, core.Options{})
		reportSPB(b, tree, func(q metric.Object) error {
			_, err := tree.RangeQuery(q, r)
			return err
		}, qs)
	})
	b.Run("M-tree", func(b *testing.B) {
		t, err := mtree.New(mtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.BulkLoad(ds.Objects); err != nil {
			b.Fatal(err)
		}
		cyc := &queryCycler{qs: qs}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.ResetStats()
			if _, err := t.RangeQuery(cyc.next(), r); err != nil {
				b.Fatal(err)
			}
			p, c := t.TakeStats()
			pa += p
			cd += c
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
	b.Run("OmniR-tree", func(b *testing.B) {
		t, err := omni.Build(ds.Objects, omni.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		cyc := &queryCycler{qs: qs}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.ResetStats()
			if _, err := t.RangeQuery(cyc.next(), r); err != nil {
				b.Fatal(err)
			}
			p, c := t.TakeStats()
			pa += p
			cd += c
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
	b.Run("M-Index", func(b *testing.B) {
		t, err := mindex.Build(ds.Objects, mindex.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		cyc := &queryCycler{qs: qs}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.ResetStats()
			if _, err := t.RangeQuery(cyc.next(), r); err != nil {
				b.Fatal(err)
			}
			p, c := t.TakeStats()
			pa += p
			cd += c
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
	b.Run("PM-tree", func(b *testing.B) {
		t, err := pmtree.New(pmtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if err := t.BulkLoad(ds.Objects); err != nil {
			b.Fatal(err)
		}
		cyc := &queryCycler{qs: qs}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.ResetStats()
			if _, err := t.RangeQuery(cyc.next(), r); err != nil {
				b.Fatal(err)
			}
			p, c := t.TakeStats()
			pa += p
			cd += c
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
}

// BenchmarkFig13KNN — Fig. 13: kNN across k values on the SPB-tree.
func BenchmarkFig13KNN(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	tree := buildCoreTree(b, ds, core.Options{})
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			reportSPB(b, tree, func(q metric.Object) error {
				_, err := tree.KNN(q, k)
				return err
			}, ds.Queries(100))
		})
	}
}

// BenchmarkFig14Scalability — Fig. 14: SPB-tree kNN vs cardinality.
func BenchmarkFig14Scalability(b *testing.B) {
	for _, n := range []int{2000, 4000, 8000} {
		ds := dataset.Synthetic(n, benchSeed)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tree := buildCoreTree(b, ds, core.Options{})
			reportSPB(b, tree, func(q metric.Object) error {
				_, err := tree.KNN(q, 8)
				return err
			}, ds.Queries(100))
		})
	}
}

// BenchmarkFig15CostModel — Figs. 15/16: cost-model estimation throughput.
func BenchmarkFig15CostModel(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	tree := buildCoreTree(b, ds, core.Options{})
	r := 0.08 * ds.Distance.MaxDistance()
	qs := ds.Queries(100)
	b.Run("range", func(b *testing.B) {
		cyc := &queryCycler{qs: qs}
		for i := 0; i < b.N; i++ {
			if _, err := tree.EstimateRange(cyc.next(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("knn", func(b *testing.B) {
		cyc := &queryCycler{qs: qs}
		for i := 0; i < b.N; i++ {
			if _, err := tree.EstimateKNN(cyc.next(), 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig17Join — Fig. 17: the three similarity joins at ε = 6% of d+.
func BenchmarkFig17Join(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	half := len(ds.Objects) / 2
	Q, O := ds.Objects[:half], ds.Objects[half:]
	eps := 0.06 * ds.Distance.MaxDistance()

	b.Run("SPB-tree-SJA", func(b *testing.B) {
		tq := buildCoreTree(b, dataset.Dataset{Name: ds.Name, Objects: Q, Distance: ds.Distance, Codec: ds.Codec},
			core.Options{Curve: sfc.ZOrder})
		to, err := core.Build(O, core.Options{
			Distance: ds.Distance, Codec: ds.Codec, Curve: sfc.ZOrder, ShareMapping: tq,
		})
		if err != nil {
			b.Fatal(err)
		}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tq.ResetStats()
			to.ResetStats()
			if _, err := core.Join(tq, to, eps); err != nil {
				b.Fatal(err)
			}
			sq, so := tq.TakeStats(), to.TakeStats()
			pa += sq.PageAccesses + so.PageAccesses
			cd += sq.DistanceComputations + so.DistanceComputations
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
	b.Run("Quickjoin", func(b *testing.B) {
		counter := metric.NewCounter(ds.Distance)
		var cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counter.Reset()
			qj := &join.Quickjoin{Dist: counter, Seed: benchSeed}
			qj.Join(Q, O, eps)
			cd += counter.Count()
		}
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
	b.Run("eD-index", func(b *testing.B) {
		ed, err := join.BuildED(Q, O, join.EDOptions{
			Distance: ds.Distance, Codec: ds.Codec, Eps0: eps, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		var pa, cd int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ed.ResetStats()
			if _, err := ed.Join(eps, false); err != nil {
				b.Fatal(err)
			}
			p, c := ed.TakeStats()
			pa += p
			cd += c
		}
		b.ReportMetric(float64(pa)/float64(b.N), "PA/op")
		b.ReportMetric(float64(cd)/float64(b.N), "dists/op")
	})
}

// BenchmarkFig18JoinCostModel — Fig. 18: join cost estimation throughput.
func BenchmarkFig18JoinCostModel(b *testing.B) {
	ds, _ := dataset.ByName("color", benchN, benchSeed)
	half := len(ds.Objects) / 2
	tq := buildCoreTree(b, dataset.Dataset{Name: ds.Name, Objects: ds.Objects[:half], Distance: ds.Distance, Codec: ds.Codec},
		core.Options{Curve: sfc.ZOrder})
	to, err := core.Build(ds.Objects[half:], core.Options{
		Distance: ds.Distance, Codec: ds.Codec, Curve: sfc.ZOrder, ShareMapping: tq,
	})
	if err != nil {
		b.Fatal(err)
	}
	eps := 0.06 * ds.Distance.MaxDistance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateJoin(tq, to, eps); err != nil {
			b.Fatal(err)
		}
	}
}
