package main

import (
	"fmt"
	"io"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/metric"
	"spbtree/internal/mindex"
	"spbtree/internal/mtree"
	"spbtree/internal/omni"
	"spbtree/internal/pmtree"
	"spbtree/internal/sfc"
)

// config carries the harness-wide knobs.
type config struct {
	n        int    // dataset cardinality (scaled down from the paper's)
	queries  int    // measured queries (the paper uses 500)
	seed     int64  // generator seed
	workers  int    // parallel-mode verifier pool for pr4/pr5 (0 = 8)
	jsonPath string // pr4/pr5: write the machine-readable report here
	out      io.Writer
}

// measured aggregates the paper's three metrics over a query batch.
type measured struct {
	pa, cd float64
	t      time.Duration
}

func (m measured) String() string {
	return fmt.Sprintf("PA=%.1f compdists=%.1f time=%v", m.pa, m.cd, m.t.Round(time.Microsecond))
}

// searchIndex is the minimal surface the harness needs from every MAM.
type searchIndex interface {
	RangeCount(q metric.Object, r float64) (int, error)
	KNNCount(q metric.Object, k int) (int, error)
	Insert(o metric.Object) error
	ResetStats()
	Stats() (pa, cd int64)
	StorageBytes() int64
}

// queryStatsIndex is the per-query observability surface: indexes that
// implement it (the SPB-tree) are measured from each query's own QueryStats
// instead of the reset+delta counter protocol, so the reported PA/compdists
// are attributable per query and the wall time excludes harness overhead.
type queryStatsIndex interface {
	RangeStats(q metric.Object, r float64) (int, core.QueryStats, error)
	KNNStats(q metric.Object, k int) (int, core.QueryStats, error)
}

// --- adapters ----------------------------------------------------------------

type spbAdapter struct{ t *core.Tree }

func (a spbAdapter) RangeCount(q metric.Object, r float64) (int, error) {
	res, err := a.t.RangeQuery(q, r)
	return len(res), err
}
func (a spbAdapter) KNNCount(q metric.Object, k int) (int, error) {
	res, err := a.t.KNN(q, k)
	return len(res), err
}
func (a spbAdapter) RangeStats(q metric.Object, r float64) (int, core.QueryStats, error) {
	res, qs, err := a.t.RangeSearchWithStats(q, r)
	return len(res), qs, err
}
func (a spbAdapter) KNNStats(q metric.Object, k int) (int, core.QueryStats, error) {
	res, qs, err := a.t.KNNWithStats(q, k)
	return len(res), qs, err
}
func (a spbAdapter) Insert(o metric.Object) error { return a.t.Insert(o) }
func (a spbAdapter) ResetStats()                  { a.t.ResetStats() }
func (a spbAdapter) Stats() (int64, int64) {
	s := a.t.TakeStats()
	return s.PageAccesses, s.DistanceComputations
}
func (a spbAdapter) StorageBytes() int64 { return a.t.StorageBytes() }

type mtreeAdapter struct{ t *mtree.Tree }

func (a mtreeAdapter) RangeCount(q metric.Object, r float64) (int, error) {
	res, err := a.t.RangeQuery(q, r)
	return len(res), err
}
func (a mtreeAdapter) KNNCount(q metric.Object, k int) (int, error) {
	res, err := a.t.KNN(q, k)
	return len(res), err
}
func (a mtreeAdapter) Insert(o metric.Object) error { return a.t.Insert(o) }
func (a mtreeAdapter) ResetStats()                  { a.t.ResetStats() }
func (a mtreeAdapter) Stats() (int64, int64)        { return a.t.TakeStats() }
func (a mtreeAdapter) StorageBytes() int64          { return a.t.StorageBytes() }

type omniAdapter struct{ t *omni.Tree }

func (a omniAdapter) RangeCount(q metric.Object, r float64) (int, error) {
	res, err := a.t.RangeQuery(q, r)
	return len(res), err
}
func (a omniAdapter) KNNCount(q metric.Object, k int) (int, error) {
	res, err := a.t.KNN(q, k)
	return len(res), err
}
func (a omniAdapter) Insert(o metric.Object) error { return a.t.Insert(o) }
func (a omniAdapter) ResetStats()                  { a.t.ResetStats() }
func (a omniAdapter) Stats() (int64, int64)        { return a.t.TakeStats() }
func (a omniAdapter) StorageBytes() int64          { return a.t.StorageBytes() }

type pmtreeAdapter struct{ t *pmtree.Tree }

func (a pmtreeAdapter) RangeCount(q metric.Object, r float64) (int, error) {
	res, err := a.t.RangeQuery(q, r)
	return len(res), err
}
func (a pmtreeAdapter) KNNCount(q metric.Object, k int) (int, error) {
	res, err := a.t.KNN(q, k)
	return len(res), err
}
func (a pmtreeAdapter) Insert(o metric.Object) error { return a.t.Insert(o) }
func (a pmtreeAdapter) ResetStats()                  { a.t.ResetStats() }
func (a pmtreeAdapter) Stats() (int64, int64)        { return a.t.TakeStats() }
func (a pmtreeAdapter) StorageBytes() int64          { return a.t.StorageBytes() }

type mindexAdapter struct{ t *mindex.Tree }

func (a mindexAdapter) RangeCount(q metric.Object, r float64) (int, error) {
	res, err := a.t.RangeQuery(q, r)
	return len(res), err
}
func (a mindexAdapter) KNNCount(q metric.Object, k int) (int, error) {
	res, err := a.t.KNN(q, k)
	return len(res), err
}
func (a mindexAdapter) Insert(o metric.Object) error { return a.t.Insert(o) }
func (a mindexAdapter) ResetStats()                  { a.t.ResetStats() }
func (a mindexAdapter) Stats() (int64, int64)        { return a.t.TakeStats() }
func (a mindexAdapter) StorageBytes() int64          { return a.t.StorageBytes() }

// mamNames orders the competitors as the paper's tables do, with the
// PM-tree (related-work hybrid, Section 2.1) added as a fifth comparator.
var mamNames = []string{"M-tree", "PM-tree", "OmniR-tree", "M-Index", "SPB-tree"}

// buildResult captures Table 6's construction columns.
type buildResult struct {
	idx     searchIndex
	pa, cd  int64
	elapsed time.Duration
	storage int64
}

// buildMAM constructs the named access method over ds and measures the
// construction cost.
func buildMAM(name string, ds dataset.Dataset, seed int64) (buildResult, error) {
	start := time.Now()
	switch name {
	case "SPB-tree":
		t, err := core.Build(ds.Objects, core.Options{
			Distance: ds.Distance, Codec: ds.Codec, Seed: seed,
		})
		if err != nil {
			return buildResult{}, err
		}
		s := t.TakeStats()
		return buildResult{idx: spbAdapter{t}, pa: s.PageAccesses, cd: s.DistanceComputations,
			elapsed: time.Since(start), storage: t.StorageBytes()}, nil
	case "M-tree":
		t, err := mtree.New(mtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: seed})
		if err != nil {
			return buildResult{}, err
		}
		if err := t.BulkLoad(ds.Objects); err != nil {
			return buildResult{}, err
		}
		pa, cd := t.TakeStats()
		return buildResult{idx: mtreeAdapter{t}, pa: pa, cd: cd,
			elapsed: time.Since(start), storage: t.StorageBytes()}, nil
	case "PM-tree":
		t, err := pmtree.New(pmtree.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: seed})
		if err != nil {
			return buildResult{}, err
		}
		if err := t.BulkLoad(ds.Objects); err != nil {
			return buildResult{}, err
		}
		pa, cd := t.TakeStats()
		return buildResult{idx: pmtreeAdapter{t}, pa: pa, cd: cd,
			elapsed: time.Since(start), storage: t.StorageBytes()}, nil
	case "OmniR-tree":
		t, err := omni.Build(ds.Objects, omni.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: seed})
		if err != nil {
			return buildResult{}, err
		}
		pa, cd := t.TakeStats()
		return buildResult{idx: omniAdapter{t}, pa: pa, cd: cd,
			elapsed: time.Since(start), storage: t.StorageBytes()}, nil
	case "M-Index":
		t, err := mindex.Build(ds.Objects, mindex.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: seed})
		if err != nil {
			return buildResult{}, err
		}
		pa, cd := t.TakeStats()
		return buildResult{idx: mindexAdapter{t}, pa: pa, cd: cd,
			elapsed: time.Since(start), storage: t.StorageBytes()}, nil
	}
	return buildResult{}, fmt.Errorf("unknown MAM %q", name)
}

// buildSPB builds an SPB-tree with extra options for the parameter studies.
func buildSPB(ds dataset.Dataset, seed int64, opts core.Options) (*core.Tree, error) {
	opts.Distance = ds.Distance
	opts.Codec = ds.Codec
	if opts.Seed == 0 {
		opts.Seed = seed
	}
	return core.Build(ds.Objects, opts)
}

// runRange measures averaged range queries (the paper's cold-cache
// protocol: counters reset and caches flushed before each query). Indexes
// exposing per-query stats are read from those; others fall back to the
// reset+delta counter protocol.
func runRange(idx searchIndex, queries []metric.Object, r float64) (measured, error) {
	var m measured
	qsi, hasQS := idx.(queryStatsIndex)
	for _, q := range queries {
		idx.ResetStats()
		if hasQS {
			_, qs, err := qsi.RangeStats(q, r)
			if err != nil {
				return m, err
			}
			m.t += qs.Elapsed
			m.pa += float64(qs.PageAccesses())
			m.cd += float64(qs.Compdists)
			continue
		}
		start := time.Now()
		if _, err := idx.RangeCount(q, r); err != nil {
			return m, err
		}
		m.t += time.Since(start)
		pa, cd := idx.Stats()
		m.pa += float64(pa)
		m.cd += float64(cd)
	}
	n := float64(len(queries))
	m.pa /= n
	m.cd /= n
	m.t /= time.Duration(len(queries))
	return m, nil
}

// runKNN measures averaged kNN queries, preferring per-query stats like
// runRange.
func runKNN(idx searchIndex, queries []metric.Object, k int) (measured, error) {
	var m measured
	qsi, hasQS := idx.(queryStatsIndex)
	for _, q := range queries {
		idx.ResetStats()
		if hasQS {
			_, qs, err := qsi.KNNStats(q, k)
			if err != nil {
				return m, err
			}
			m.t += qs.Elapsed
			m.pa += float64(qs.PageAccesses())
			m.cd += float64(qs.Compdists)
			continue
		}
		start := time.Now()
		if _, err := idx.KNNCount(q, k); err != nil {
			return m, err
		}
		m.t += time.Since(start)
		pa, cd := idx.Stats()
		m.pa += float64(pa)
		m.cd += float64(cd)
	}
	n := float64(len(queries))
	m.pa /= n
	m.cd /= n
	m.t /= time.Duration(len(queries))
	return m, nil
}

// scaledDataset returns the named dataset at the harness cardinality. DNA's
// tri-gram metric is the most expensive, so it runs at half size by default
// — the same proportionality the paper's table of cardinalities has.
func scaledDataset(cfg config, name string) dataset.Dataset {
	n := cfg.n
	if name == "dna" || name == "DNA" {
		n = cfg.n / 2
		if n == 0 {
			n = cfg.n
		}
	}
	ds, ok := dataset.ByName(name, n, cfg.seed)
	if !ok {
		panic("unknown dataset " + name)
	}
	return ds
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// zorderOpts returns SPB options for join experiments.
func zorderOpts() core.Options {
	return core.Options{Curve: sfc.ZOrder}
}
