package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/recall"
)

// pr9 benchmarks the approximate graph tier (DESIGN.md §14) against exact
// kNN on Words, Color, Color32 and DNAEdit. Per dataset it builds one tree,
// measures exact kNN (k=10) as the latency and recall baseline, constructs
// the NN-descent graph, and sweeps the beam width ef over 16/32/64/128
// measuring recall@10 (via the shared recall helper, against the exact
// answer computed once per query set) and per-query latency. Two recall
// figures are reported: ID recall (recall.AtK) and tie-aware recall
// (recall.WithinKth) — under discrete metrics like edit distance many
// objects tie at the true k-th distance and exact kNN breaks those ties by
// ID, so an equally near answer can score low on ID recall; the tie-aware
// column judges distances only.
//
// Two machine-independent invariants gate the run — the CI contract:
//
//   - building a graph perturbs nothing on the exact path: the exact kNN
//     pass repeated after BuildGraph reproduces the pre-graph result hash
//     (FNV-1a over every (id, distance-bits) pair, in order) exactly,
//   - at the default beam width (ef=64) the graph's mean recall@10 on Color
//     is at least 0.90.
//
// The headline number is the speedup column: exact wall time over graph
// wall time at each ef, which the committed BENCH_PR9.json records at the
// PR's reference cardinality.
//
// With -json FILE it writes the machine-readable BENCH_PR9.json report.
func pr9(cfg config) error {
	header(cfg.out, "PR9: approximate graph tier (NN-descent + beam search) vs exact kNN")
	const k = 10
	report := pr9Report{
		N: cfg.n, Queries: cfg.queries, K: k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(cfg.out, "%-10s %-9s %5s %12s %12s %10s %9s %9s %8s\n",
		"dataset", "mode", "ef", "latency/q", "compdists/q", "hops/q", "recall@10", "tie-aware", "speedup")

	for _, name := range []string{"words", "color", "color32", "dnaedit"} {
		ds := scaledDataset(cfg, name)
		tree, err := buildSPB(ds, cfg.seed, core.Options{})
		if err != nil {
			return err
		}
		queries := ds.Queries(cfg.queries)

		exact, exactIDs, exactKth, err := pr9Exact(tree, queries, k)
		if err != nil {
			tree.Close()
			return err
		}
		if err := tree.BuildGraph(core.GraphOptions{Seed: cfg.seed}); err != nil {
			tree.Close()
			return err
		}
		recheck, _, _, err := pr9Exact(tree, queries, k)
		if err != nil {
			tree.Close()
			return err
		}
		if recheck.Hash != exact.Hash || recheck.CD != exact.CD {
			tree.Close()
			return fmt.Errorf("pr9: %s: exact kNN changed after BuildGraph (hash %x cd %.1f -> hash %x cd %.1f)",
				ds.Name, exact.Hash, exact.CD, recheck.Hash, recheck.CD)
		}
		exact.Dataset, exact.Mode = ds.Name, "exact"
		report.Entries = append(report.Entries, exact)
		fmt.Fprintf(cfg.out, "%-10s %-9s %5s %10.0fµs %12.1f %10s %9s %9s %8s\n",
			ds.Name, "exact", "-", exact.WallUs, exact.CD, "-", "-", "-", "-")

		for _, ef := range []int{16, 32, 64, 128} {
			e, err := pr9Graph(tree, queries, k, ef, exactIDs, exactKth)
			if err != nil {
				tree.Close()
				return err
			}
			e.Dataset, e.Mode = ds.Name, "graph"
			e.Speedup = exact.WallUs / e.WallUs
			report.Entries = append(report.Entries, e)
			fmt.Fprintf(cfg.out, "%-10s %-9s %5d %10.0fµs %12.1f %10.1f %9.3f %9.3f %7.1fx\n",
				ds.Name, "graph", ef, e.WallUs, e.CD, e.Hops, e.Recall, e.RecallTie, e.Speedup)
			if ds.Name == "Color" && ef == core.DefaultEf && e.Recall < 0.90 {
				tree.Close()
				return fmt.Errorf("pr9: Color recall@%d = %.3f at default ef=%d, gate is 0.90",
					k, e.Recall, ef)
			}
		}
		tree.Close()
	}
	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr9Entry is one (dataset, mode, ef) warm measurement, averaged per query.
type pr9Entry struct {
	Dataset string  `json:"dataset"`
	Mode    string  `json:"mode"`
	Ef      int     `json:"ef,omitempty"`
	WallUs  float64 `json:"wall_us_per_query"`
	CD      float64 `json:"compdists_per_query"`
	Hops    float64 `json:"graph_hops_per_query,omitempty"`
	Recall  float64 `json:"recall_at_10,omitempty"`
	// RecallTie is tie-aware recall@10 (recall.WithinKth): the fraction of
	// returned distances no larger than the exact 10th-neighbor distance.
	RecallTie float64 `json:"recall_at_10_tie_aware,omitempty"`
	Speedup   float64 `json:"speedup_vs_exact,omitempty"`
	Hash      uint64  `json:"result_hash,omitempty"`
}

// pr9Report is the BENCH_PR9.json schema.
type pr9Report struct {
	N          int        `json:"n"`
	Queries    int        `json:"queries"`
	K          int        `json:"k"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Entries    []pr9Entry `json:"entries"`
}

// pr9Exact runs the warm exact-kNN protocol: one priming pass, then a
// measured pass recording per-query stats, the ordered result hash and the
// per-query ID lists (the recall baseline).
func pr9Exact(tree *core.Tree, queries []metric.Object, k int) (pr9Entry, [][]uint64, []float64, error) {
	var e pr9Entry
	for _, q := range queries {
		if _, err := tree.KNN(q, k); err != nil {
			return e, nil, nil, err
		}
	}
	h := fnv.New64a()
	var buf [16]byte
	ids := make([][]uint64, len(queries))
	kth := make([]float64, len(queries))
	for qi, q := range queries {
		res, qs, err := tree.KNNWithStats(q, k)
		if err != nil {
			return e, nil, nil, err
		}
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		ids[qi] = make([]uint64, len(res))
		for i, x := range res {
			ids[qi][i] = x.Object.ID()
			binary.LittleEndian.PutUint64(buf[:8], x.Object.ID())
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(x.Dist))
			h.Write(buf[:])
		}
		if len(res) > 0 {
			kth[qi] = res[len(res)-1].Dist
		}
	}
	e.Hash = h.Sum64()
	nq := float64(len(queries))
	e.WallUs /= nq
	e.CD /= nq
	return e, ids, kth, nil
}

// pr9Graph runs the warm graph-kNN protocol at one beam width, measuring
// latency, cost and mean recall@k against the exact baseline.
func pr9Graph(tree *core.Tree, queries []metric.Object, k, ef int, exactIDs [][]uint64, exactKth []float64) (pr9Entry, error) {
	e := pr9Entry{Ef: ef}
	opts := core.SearchOptions{Ef: ef}
	for _, q := range queries {
		if _, err := tree.KNNGraph(q, k, opts); err != nil {
			return e, err
		}
	}
	recalls := make([]float64, 0, len(queries))
	tieRecalls := make([]float64, 0, len(queries))
	for qi, q := range queries {
		res, qs, err := tree.KNNGraphWithStats(q, k, opts)
		if err != nil {
			return e, err
		}
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		e.Hops += float64(qs.GraphHops)
		got := make([]uint64, len(res))
		dists := make([]float64, len(res))
		for i, x := range res {
			got[i] = x.Object.ID()
			dists[i] = x.Dist
		}
		recalls = append(recalls, recall.AtK(exactIDs[qi], got, k))
		tieRecalls = append(tieRecalls, recall.WithinKth(exactKth[qi], dists, k))
	}
	e.Recall = recall.Mean(recalls)
	e.RecallTie = recall.Mean(tieRecalls)
	nq := float64(len(queries))
	e.WallUs /= nq
	e.CD /= nq
	e.Hops /= nq
	return e, nil
}
