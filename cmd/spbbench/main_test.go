package main

import (
	"io"
	"strings"
	"testing"

	"spbtree/internal/dataset"
)

func tinyConfig() config {
	return config{n: 400, queries: 4, seed: 1, out: io.Discard}
}

// TestExperimentsRun executes every experiment at a tiny scale; a panic,
// error, or correctness violation in any code path fails the suite.
func TestExperimentsRun(t *testing.T) {
	cfg := tinyConfig()
	experiments := map[string]func(config) error{
		"table2": table2, "table4": table4, "table5": table5,
		"table6": table6, "table7": table7,
		"fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
		"fig14": fig14, "fig15": fig15, "fig16": fig16, "fig17": fig17, "fig18": fig18,
		"ablation": ablation, "forest": forestExp,
	}
	for name, fn := range experiments {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := fn(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// fig9 runs many builds; keep it serial and even smaller.
func TestFig9Runs(t *testing.T) {
	cfg := tinyConfig()
	cfg.n = 250
	cfg.queries = 3
	if err := fig9(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestJoinSanity cross-checks the three join implementations on every
// dataset kind — they must agree pair for pair.
func TestJoinSanity(t *testing.T) {
	for _, name := range []string{"color", "words", "signature", "dna"} {
		ds, _ := dataset.ByName(name, 300, 3)
		eps := 0.05 * ds.Distance.MaxDistance()
		if err := joinSanity(ds, eps, 3); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTableOutputShape spot-checks that a table actually renders rows.
func TestTableOutputShape(t *testing.T) {
	var sb strings.Builder
	cfg := tinyConfig()
	cfg.out = &sb
	if err := table4(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 4", "hilbert", "zorder", "Color", "Words", "DNA"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q", want)
		}
	}
}
