package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"

	"spbtree/internal/core"
	"spbtree/internal/forest"
	"spbtree/internal/metric"
)

// pr10 benchmarks the cost-model-driven adaptive query planner (DESIGN.md
// §15) on Words, Color32 and DNAEdit, in two halves:
//
//   - Single tree: a planner-enabled tree versus an identically-built tree
//     with Options.DisablePlanner, both at the same worker cap. The warm
//     pass doubles as planner calibration (≥16 queries feed the unit-cost
//     EWMAs), then range and kNN batches are measured on each.
//   - Forest scatter: a 5-shard forest with the §15.4 adaptive scatter
//     (shard pruning + staged bounded kNN) versus the same forest with
//     SetAdaptive(false) — the flat all-shard scatter.
//
// Machine-independent invariants gate the run — the CI contract:
//
//   - planner-on results are byte-identical to fixed-plan results (FNV-1a
//     over every (id, distance-bits) pair, in order), and so is the
//     distance-computation count: the planner moves only the worker count,
//     never the work;
//   - the staged forest scatter answers byte-identically to the flat one and
//     never does more distance work per kNN batch;
//   - the staged scatter's kNN compdists are strictly below flat on at least
//     two of the three datasets (the headline fan-out reduction);
//   - planner-on wall time stays within 1.6× of fixed (skipped when the
//     fixed batch is under 5ms — too small to time reliably).
//
// With -json FILE it writes the machine-readable BENCH_PR10.json report.
func pr10(cfg config) error {
	header(cfg.out, "PR10: adaptive query planner + staged scatter vs fixed execution")
	const k = 10
	workers := cfg.workers
	if workers <= 0 {
		workers = 4
	}
	report := pr10Report{
		N: cfg.n, Queries: cfg.queries, K: k, Workers: workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	radii := map[string]float64{"words": 2, "color32": 0.08, "dnaedit": 12}
	fmt.Fprintf(cfg.out, "%-10s %-8s %-6s %12s %14s %10s %8s\n",
		"dataset", "layer", "mode", "latency/q", "compdists/q", "planned", "savings")

	stagedWins := 0
	for _, name := range []string{"words", "color32", "dnaedit"} {
		ds := scaledDataset(cfg, name)
		queries := ds.Queries(cfg.queries)
		r := radii[name]

		// --- single tree: planner vs fixed -------------------------------
		planned, err := buildSPB(ds, cfg.seed, core.Options{Workers: workers})
		if err != nil {
			return err
		}
		fixed, err := buildSPB(ds, cfg.seed, core.Options{Workers: workers, DisablePlanner: true})
		if err != nil {
			planned.Close()
			return err
		}
		// Snapshot the cost model off the query path, then calibrate the
		// unit-cost EWMAs with the warm pass (also the cache warm-up).
		if _, err := planned.EstimateRange(queries[0], r); err != nil {
			planned.Close()
			fixed.Close()
			return err
		}
		pe, err := pr10Tree(planned, queries, r, k)
		if err == nil {
			pe, err = pr10Tree(planned, queries, r, k) // measured pass, calibrated
		}
		var fe pr10Entry
		if err == nil {
			_, err = pr10Tree(fixed, queries, r, k) // warm
		}
		if err == nil {
			fe, err = pr10Tree(fixed, queries, r, k)
		}
		planned.Close()
		fixed.Close()
		if err != nil {
			return err
		}
		if pe.Hash != fe.Hash {
			return fmt.Errorf("pr10: %s: planner-on results differ from fixed (hash %x vs %x)",
				ds.Name, pe.Hash, fe.Hash)
		}
		if pe.CD != fe.CD {
			return fmt.Errorf("pr10: %s: planner-on compdists %.1f differ from fixed %.1f — the planner must only move workers",
				ds.Name, pe.CD, fe.CD)
		}
		nq := float64(len(queries))
		if fe.WallUs*nq >= 5000 && pe.WallUs > 1.6*fe.WallUs {
			return fmt.Errorf("pr10: %s: planner-on wall %.0fµs/q exceeds 1.6× fixed %.0fµs/q",
				ds.Name, pe.WallUs, fe.WallUs)
		}
		pe.Dataset, pe.Layer, pe.Mode = ds.Name, "tree", "planner"
		fe.Dataset, fe.Layer, fe.Mode = ds.Name, "tree", "fixed"
		report.Entries = append(report.Entries, pe, fe)
		fmt.Fprintf(cfg.out, "%-10s %-8s %-6s %10.0fµs %14.1f %9.0f%% %8s\n",
			ds.Name, "tree", "plan", pe.WallUs, pe.CD, 100*pe.PlannedFrac, "-")
		fmt.Fprintf(cfg.out, "%-10s %-8s %-6s %10.0fµs %14.1f %10s %8s\n",
			ds.Name, "tree", "fixed", fe.WallUs, fe.CD, "-", "-")

		// --- forest: staged/pruned scatter vs flat -----------------------
		f, err := forest.Build(ds.Objects, forest.Options{
			Tree:   core.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: cfg.seed},
			Shards: 5,
		})
		if err != nil {
			return err
		}
		f.SetAdaptive(true)
		se, err := pr10Forest(f, queries, r, k)
		if err == nil {
			se, err = pr10Forest(f, queries, r, k)
		}
		var fl pr10Entry
		if err == nil {
			f.SetAdaptive(false)
			_, err = pr10Forest(f, queries, r, k)
		}
		if err == nil {
			fl, err = pr10Forest(f, queries, r, k)
		}
		if err != nil {
			return err
		}
		if se.Hash != fl.Hash {
			return fmt.Errorf("pr10: %s: staged scatter results differ from flat (hash %x vs %x)",
				ds.Name, se.Hash, fl.Hash)
		}
		if se.KnnCD > fl.KnnCD {
			return fmt.Errorf("pr10: %s: staged kNN compdists %.1f exceed flat %.1f",
				ds.Name, se.KnnCD, fl.KnnCD)
		}
		if se.KnnCD < fl.KnnCD {
			stagedWins++
		}
		saving := 1 - se.KnnCD/fl.KnnCD
		se.Dataset, se.Layer, se.Mode = ds.Name, "forest", "staged"
		fl.Dataset, fl.Layer, fl.Mode = ds.Name, "forest", "flat"
		se.KnnSaving = saving
		report.Entries = append(report.Entries, se, fl)
		fmt.Fprintf(cfg.out, "%-10s %-8s %-6s %10.0fµs %14.1f %10s %7.1f%%\n",
			ds.Name, "forest", "staged", se.WallUs, se.CD, "-", 100*saving)
		fmt.Fprintf(cfg.out, "%-10s %-8s %-6s %10.0fµs %14.1f %10s %8s\n",
			ds.Name, "forest", "flat", fl.WallUs, fl.CD, "-", "-")
	}
	if stagedWins < 2 {
		return fmt.Errorf("pr10: staged kNN scatter saved distance work on only %d/3 datasets, gate is 2", stagedWins)
	}

	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr10Entry is one (dataset, layer, mode) warm measurement, averaged per
// query across the mixed range+kNN batch.
type pr10Entry struct {
	Dataset string `json:"dataset"`
	// Layer is "tree" (planner vs fixed) or "forest" (staged vs flat).
	Layer  string  `json:"layer"`
	Mode   string  `json:"mode"`
	WallUs float64 `json:"wall_us_per_query"`
	CD     float64 `json:"compdists_per_query"`
	// KnnCD isolates the kNN half of the batch — the staged scatter's
	// savings target.
	KnnCD float64 `json:"knn_compdists_per_query,omitempty"`
	// PlannedFrac is the fraction of measured queries the planner decided
	// (PlanModePlanned) rather than fell back on (tree layer only).
	PlannedFrac float64 `json:"planned_fraction,omitempty"`
	// MeanWorkers averages the granted verifier slots over planned queries.
	MeanWorkers float64 `json:"mean_workers,omitempty"`
	// KnnSaving is 1 − staged/flat kNN compdists (staged rows only).
	KnnSaving float64 `json:"knn_compdist_saving,omitempty"`
	Hash      uint64  `json:"result_hash,omitempty"`
}

// pr10Report is the BENCH_PR10.json schema.
type pr10Report struct {
	N          int         `json:"n"`
	Queries    int         `json:"queries"`
	K          int         `json:"k"`
	Workers    int         `json:"workers"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Entries    []pr10Entry `json:"entries"`
}

// pr10Hash folds one result list into the ordered FNV-1a result hash.
func pr10Hash(h interface{ Write([]byte) (int, error) }, res []core.Result) {
	var buf [16]byte
	for _, x := range res {
		binary.LittleEndian.PutUint64(buf[:8], x.Object.ID())
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(x.Dist))
		h.Write(buf[:])
	}
}

// pr10Tree runs the mixed range+kNN batch on one tree, hashing results and
// aggregating per-query stats plus the planner decision mix.
func pr10Tree(t *core.Tree, queries []metric.Object, r float64, k int) (pr10Entry, error) {
	var e pr10Entry
	h := fnv.New64a()
	plannedQ, workerSum := 0, 0
	for _, q := range queries {
		res, qs, err := t.RangeSearchWithStats(q, r)
		if err != nil {
			return e, err
		}
		pr10Hash(h, res)
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		if qs.Plan.Mode == core.PlanModePlanned {
			plannedQ++
			workerSum += qs.Plan.Workers
		}
		res, qs, err = t.KNNWithStats(q, k)
		if err != nil {
			return e, err
		}
		pr10Hash(h, res)
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		e.KnnCD += float64(qs.Compdists)
		if qs.Plan.Mode == core.PlanModePlanned {
			plannedQ++
			workerSum += qs.Plan.Workers
		}
	}
	e.Hash = h.Sum64()
	nq := float64(len(queries))
	e.WallUs /= 2 * nq
	e.CD /= 2 * nq
	e.KnnCD /= nq
	e.PlannedFrac = float64(plannedQ) / (2 * nq)
	if plannedQ > 0 {
		e.MeanWorkers = float64(workerSum) / float64(plannedQ)
	}
	return e, nil
}

// pr10Forest runs the mixed range+kNN batch on one forest configuration.
func pr10Forest(f *forest.Forest, queries []metric.Object, r float64, k int) (pr10Entry, error) {
	var e pr10Entry
	h := fnv.New64a()
	ctx := context.Background()
	for _, q := range queries {
		res, qs, err := f.RangeQueryWithStatsCtx(ctx, q, r)
		if err != nil {
			return e, err
		}
		pr10Hash(h, res)
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		res, qs, err = f.KNNWithStatsCtx(ctx, q, k)
		if err != nil {
			return e, err
		}
		pr10Hash(h, res)
		e.WallUs += float64(qs.Elapsed.Microseconds())
		e.CD += float64(qs.Compdists)
		e.KnnCD += float64(qs.Compdists)
	}
	e.Hash = h.Sum64()
	nq := float64(len(queries))
	e.WallUs /= 2 * nq
	e.CD /= 2 * nq
	e.KnnCD /= nq
	return e, nil
}
