package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
)

// pr4 benchmarks the parallel query execution engine (DESIGN.md §9) against
// fully serial execution on the Table 4 / Fig. 10 workloads: kNN with k=8
// (greedy traversal, so leaf batches exercise the coalesced RAF reads) and
// range queries at r = 8% of d+, each measured cold (cache flushed per
// query, the paper's protocol) and warm (cache large enough to hold the
// working set, primed by one pass).
//
// Beyond reporting, the experiment enforces the engine's portable
// invariants and fails on violation — this is the CI regression gate:
//
//   - parallel Compdists equals serial Compdists exactly (the ordered-commit
//     replay guarantee),
//   - parallel result counts equal serial result counts,
//   - warm parallel PA does not exceed warm serial PA,
//   - warm parallel wall time is at most 2× warm serial wall time.
//
// Wall-clock speedup from parallelism itself scales with GOMAXPROCS; the
// emitted JSON records the core count so baselines from different machines
// are comparable.
func pr4(cfg config) error {
	header(cfg.out, "PR4: parallel execution engine, serial vs parallel verification")
	workers := cfg.workers
	if workers == 0 {
		workers = 8
	}
	report := pr4Report{
		N: cfg.n, Queries: cfg.queries, K: 8, Workers: workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		WarmSpeedup: map[string]float64{},
	}
	fmt.Fprintf(cfg.out, "%-10s %-6s %-5s %10s %12s %12s %12s\n",
		"dataset", "op", "cache", "PA/q", "compdists/q", "serial", fmt.Sprintf("K=%d", workers))

	for _, name := range []string{"words", "dna", "color"} {
		ds := scaledDataset(cfg, name)
		// A cache sized to the whole store makes the warm runs purely
		// CPU-bound, isolating the verification pipeline.
		tree, err := buildSPB(ds, cfg.seed, core.Options{
			Traversal: core.Greedy, CacheSize: 1 << 16,
		})
		if err != nil {
			return err
		}
		queries := ds.Queries(cfg.queries)
		r := 0.08 * ds.Distance.MaxDistance()

		for _, op := range []string{"knn", "range"} {
			for _, cache := range []string{"cold", "warm"} {
				var serial, parallel pr4Entry
				for _, mode := range []int{1, workers} {
					tree.SetWorkers(mode)
					e, err := pr4Measure(tree, queries, op, r, cache == "warm")
					if err != nil {
						return err
					}
					e.Dataset, e.Op, e.Cache = ds.Name, op, cache
					if mode == 1 {
						e.Mode = "serial"
						serial = e
					} else {
						e.Mode = fmt.Sprintf("parallel%d", workers)
						parallel = e
					}
					report.Entries = append(report.Entries, e)
				}
				if err := pr4Check(serial, parallel, cache); err != nil {
					return err
				}
				if op == "knn" && cache == "warm" {
					report.WarmSpeedup[ds.Name] = serial.WallUs / parallel.WallUs
				}
				fmt.Fprintf(cfg.out, "%-10s %-6s %-5s %10.1f %12.1f %10.0fµs %10.0fµs\n",
					ds.Name, op, cache, parallel.PA, parallel.CD, serial.WallUs, parallel.WallUs)
			}
		}
		tree.Close()
	}
	for dsName, s := range report.WarmSpeedup {
		fmt.Fprintf(cfg.out, "warm kNN k=8 speedup [%s]: %.2fx (GOMAXPROCS=%d)\n",
			dsName, s, report.GOMAXPROCS)
	}
	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr4Entry is one (dataset, op, mode, cache) measurement, averaged per query.
type pr4Entry struct {
	Dataset string  `json:"dataset"`
	Op      string  `json:"op"`
	Mode    string  `json:"mode"`
	Cache   string  `json:"cache"`
	WallUs  float64 `json:"wall_us_per_query"`
	PA      float64 `json:"pa_per_query"`
	CD      float64 `json:"compdists_per_query"`
	Results int     `json:"results_total"`
}

// pr4Report is the BENCH_PR4.json schema: the environment, every
// measurement, and the headline warm-kNN speedups per dataset.
type pr4Report struct {
	N           int                `json:"n"`
	Queries     int                `json:"queries"`
	K           int                `json:"k"`
	Workers     int                `json:"workers"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Entries     []pr4Entry         `json:"entries"`
	WarmSpeedup map[string]float64 `json:"warm_knn_speedup"`
}

// pr4Measure runs the workload twice: once with per-query stats for the
// PA/compdists counters, once with the plain entry points for wall time —
// so the serial mode is not penalized by the per-verification stage clocks
// of the WithStats path.
func pr4Measure(tree *core.Tree, queries []metric.Object, op string, r float64, warm bool) (pr4Entry, error) {
	var e pr4Entry
	run := func(q metric.Object) (int, error) {
		if op == "knn" {
			res, err := tree.KNN(q, 8)
			return len(res), err
		}
		res, err := tree.RangeQuery(q, r)
		return len(res), err
	}
	runStats := func(q metric.Object) (int, core.QueryStats, error) {
		if op == "knn" {
			res, qs, err := tree.KNNWithStats(q, 8)
			return len(res), qs, err
		}
		res, qs, err := tree.RangeSearchWithStats(q, r)
		return len(res), qs, err
	}
	if warm {
		for _, q := range queries {
			if _, err := run(q); err != nil {
				return e, err
			}
		}
	}
	for _, q := range queries {
		if !warm {
			tree.ResetStats()
		}
		n, qs, err := runStats(q)
		if err != nil {
			return e, err
		}
		e.Results += n
		e.PA += float64(qs.PageAccesses())
		e.CD += float64(qs.Compdists)
	}
	var total time.Duration
	for _, q := range queries {
		if !warm {
			tree.ResetStats()
		}
		start := time.Now()
		if _, err := run(q); err != nil {
			return e, err
		}
		total += time.Since(start)
	}
	nq := float64(len(queries))
	e.WallUs = float64(total.Microseconds()) / nq
	e.PA /= nq
	e.CD /= nq
	return e, nil
}

// pr4Check enforces the engine's machine-independent invariants.
func pr4Check(serial, parallel pr4Entry, cache string) error {
	if parallel.CD != serial.CD {
		return fmt.Errorf("pr4: %s/%s %s: parallel compdists %.1f != serial %.1f",
			serial.Dataset, serial.Op, cache, parallel.CD, serial.CD)
	}
	if parallel.Results != serial.Results {
		return fmt.Errorf("pr4: %s/%s %s: parallel results %d != serial %d",
			serial.Dataset, serial.Op, cache, parallel.Results, serial.Results)
	}
	if cache == "warm" {
		if parallel.PA > serial.PA {
			return fmt.Errorf("pr4: %s/%s warm: parallel PA %.1f > serial %.1f",
				serial.Dataset, serial.Op, parallel.PA, serial.PA)
		}
		if parallel.WallUs > 2*serial.WallUs {
			return fmt.Errorf("pr4: %s/%s warm: parallel wall %.0fµs > 2x serial %.0fµs",
				serial.Dataset, serial.Op, parallel.WallUs, serial.WallUs)
		}
	}
	return nil
}
