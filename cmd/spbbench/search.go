package main

import (
	"fmt"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/pivot"
	"spbtree/internal/sfc"
)

// table4 — SPB-tree efficiency under different SFCs (Hilbert vs Z-curve),
// kNN with k=8 on Color, Words, DNA.
func table4(cfg config) error {
	header(cfg.out, "Table 4: SPB-tree efficiency under different SFCs (kNN, k=8)")
	fmt.Fprintf(cfg.out, "%-10s %-8s %10s %12s %12s\n", "dataset", "curve", "PA", "compdists", "time")
	for _, name := range []string{"color", "words", "dna"} {
		ds := scaledDataset(cfg, name)
		for _, kind := range []sfc.Kind{sfc.Hilbert, sfc.ZOrder} {
			tree, err := buildSPB(ds, cfg.seed, core.Options{Curve: kind})
			if err != nil {
				return err
			}
			m, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "%-10s %-8s %10.1f %12.1f %12v\n", ds.Name, kind, m.pa, m.cd, m.t)
		}
	}
	return nil
}

// fig9 — pivot selection algorithms vs |P| ∈ {1,3,5,7,9}: compdists, PA,
// time of kNN (k=8).
func fig9(cfg config) error {
	header(cfg.out, "Fig. 9: pivot selection methods vs |P| (kNN, k=8)")
	selectors := []pivot.Selector{pivot.HFI{}, pivot.HF{}, pivot.Spacing{}, pivot.PCA{}}
	for _, name := range []string{"color", "words", "dna"} {
		ds := scaledDataset(cfg, name)
		fmt.Fprintf(cfg.out, "\n[%s]\n%-9s %4s %12s %10s %12s\n", ds.Name, "method", "|P|", "compdists", "PA", "time")
		for _, sel := range selectors {
			for _, p := range []int{1, 3, 5, 7, 9} {
				tree, err := buildSPB(ds, cfg.seed, core.Options{NumPivots: p, Selector: sel})
				if err != nil {
					return err
				}
				m, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
				if err != nil {
					return err
				}
				fmt.Fprintf(cfg.out, "%-9s %4d %12.1f %10.1f %12v\n", sel.Name(), p, m.cd, m.pa, m.t)
			}
		}
	}
	return nil
}

// fig10 — effect of the buffer-cache size (pages) on kNN I/O and time.
func fig10(cfg config) error {
	header(cfg.out, "Fig. 10: effect of cache size (kNN, k=8)")
	for _, name := range []string{"color", "words"} {
		ds := scaledDataset(cfg, name)
		fmt.Fprintf(cfg.out, "\n[%s]\n%8s %10s %12s\n", ds.Name, "cache", "PA", "time")
		for _, cache := range []int{0, 8, 16, 32, 64, 128} {
			cs := cache
			if cs == 0 {
				cs = -1 // Options: negative disables, 0 means default
			}
			tree, err := buildSPB(ds, cfg.seed, core.Options{CacheSize: cs})
			if err != nil {
				return err
			}
			m, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "%8d %10.1f %12v\n", cache, m.pa, m.t)
		}
	}
	return nil
}

// table5 — kNN search with incremental vs greedy traversal.
func table5(cfg config) error {
	header(cfg.out, "Table 5: kNN search with different traversal strategies (k=8)")
	fmt.Fprintf(cfg.out, "%-10s %-12s %10s %12s %12s\n", "dataset", "traversal", "PA", "compdists", "time")
	for _, name := range []string{"color", "words", "dna"} {
		ds := scaledDataset(cfg, name)
		tree, err := buildSPB(ds, cfg.seed, core.Options{})
		if err != nil {
			return err
		}
		for _, strat := range []core.TraversalStrategy{core.Incremental, core.Greedy} {
			tree.SetTraversal(strat)
			m, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "%-10s %-12v %10.1f %12.1f %12v\n", ds.Name, strat, m.pa, m.cd, m.t)
		}
	}
	return nil
}

// fig11 — effect of the δ-approximation granularity on Color and Synthetic
// (the two real-valued metrics).
func fig11(cfg config) error {
	header(cfg.out, "Fig. 11: effect of delta (kNN, k=8)")
	for _, name := range []string{"color", "synthetic"} {
		ds := scaledDataset(cfg, name)
		fmt.Fprintf(cfg.out, "\n[%s]\n%8s %12s %10s %12s\n", ds.Name, "delta", "compdists", "PA", "time")
		for _, delta := range []float64{0.001, 0.003, 0.005, 0.007, 0.009} {
			tree, err := buildSPB(ds, cfg.seed, core.Options{DeltaFrac: delta})
			if err != nil {
				return err
			}
			m, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "%8.3f %12.1f %10.1f %12v\n", delta, m.cd, m.pa, m.t)
		}
	}
	return nil
}

// fig12 — range query performance vs r (% of d+) across all five MAMs.
func fig12(cfg config) error {
	header(cfg.out, "Fig. 12: range query performance vs r (% of d+)")
	return sweepMAMs(cfg, []string{"signature", "color", "words", "dna"},
		[]float64{2, 4, 6, 8, 16, 32, 64}, "r%",
		func(idx searchIndex, ds dataset.Dataset, x float64) (measured, error) {
			r := x / 100 * ds.Distance.MaxDistance()
			return runRange(idx, ds.Queries(cfg.queries), r)
		})
}

// fig13 — kNN query performance vs k across all five MAMs.
func fig13(cfg config) error {
	header(cfg.out, "Fig. 13: kNN query performance vs k")
	return sweepMAMs(cfg, []string{"signature", "color", "words", "dna"},
		[]float64{1, 2, 4, 8, 16, 32}, "k",
		func(idx searchIndex, ds dataset.Dataset, x float64) (measured, error) {
			return runKNN(idx, ds.Queries(cfg.queries), int(x))
		})
}

// sweepMAMs runs one sweep per dataset per competitor.
func sweepMAMs(cfg config, datasets []string, xs []float64, xName string,
	run func(searchIndex, dataset.Dataset, float64) (measured, error)) error {
	for _, name := range datasets {
		ds := scaledDataset(cfg, name)
		fmt.Fprintf(cfg.out, "\n[%s]\n%-11s %6s %10s %12s %12s\n", ds.Name, "MAM", xName, "PA", "compdists", "time")
		for _, mam := range mamNames {
			br, err := buildMAM(mam, ds, cfg.seed)
			if err != nil {
				return err
			}
			for _, x := range xs {
				m, err := run(br.idx, ds, x)
				if err != nil {
					return err
				}
				fmt.Fprintf(cfg.out, "%-11s %6g %10.1f %12.1f %12v\n", mam, x, m.pa, m.cd, m.t)
			}
		}
	}
	return nil
}

// fig14 — scalability of SPB-tree similarity search vs cardinality
// (Synthetic; the paper's 200K-1000K scaled to the harness -n).
func fig14(cfg config) error {
	header(cfg.out, "Fig. 14: scalability vs cardinality (Synthetic)")
	fmt.Fprintf(cfg.out, "%8s %-6s %10s %12s %12s\n", "n", "query", "PA", "compdists", "time")
	for _, frac := range []int{1, 2, 3, 4, 5} {
		n := cfg.n * frac / 5 * 2 // up to 2× the base cardinality
		if n < 100 {
			n = 100
		}
		ds := dataset.Synthetic(n, cfg.seed)
		tree, err := buildSPB(ds, cfg.seed, core.Options{})
		if err != nil {
			return err
		}
		r := 0.08 * ds.Distance.MaxDistance()
		mr, err := runRange(spbAdapter{tree}, ds.Queries(cfg.queries), r)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "%8d %-6s %10.1f %12.1f %12v\n", n, "range", mr.pa, mr.cd, mr.t)
		mk, err := runKNN(spbAdapter{tree}, ds.Queries(cfg.queries), 8)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "%8d %-6s %10.1f %12.1f %12v\n", n, "kNN", mk.pa, mk.cd, mk.t)
	}
	return nil
}
