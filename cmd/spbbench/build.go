package main

import (
	"fmt"
	"math/rand"
	"time"

	"spbtree/internal/dataset"
	"spbtree/internal/metric"
	"spbtree/internal/pivot"
)

// table2 — dataset statistics: cardinality, intrinsic dimensionality, and
// the precision (Definition 1) of 5 HFI pivots.
func table2(cfg config) error {
	header(cfg.out, "Table 2: statistics of the datasets used")
	fmt.Fprintf(cfg.out, "%-10s %12s %8s %8s %-30s\n", "dataset", "cardinality", "ins.dim", "prec.", "measurement")
	rng := rand.New(rand.NewSource(cfg.seed))
	for _, name := range []string{"words", "color", "dna", "signature", "synthetic"} {
		ds := scaledDataset(cfg, name)
		stats := metric.SampleStats(ds.Objects, ds.Distance, 2000, rng)
		pairs := pivot.SamplePairs(ds.Objects, ds.Distance, 500, rng)
		pv := pivot.HFI{}.Select(ds.Objects, ds.Distance, 5, rng)
		prec := pivot.Precision(pv, pairs, ds.Distance)
		fmt.Fprintf(cfg.out, "%-10s %12d %8.2f %8.3f %-30s\n",
			ds.Name, len(ds.Objects), stats.IntrinsicDim, prec, ds.Distance.Name())
	}
	return nil
}

// table6 — construction cost and storage size of all five MAMs.
func table6(cfg config) error {
	header(cfg.out, "Table 6: construction costs and storage sizes of MAMs")
	fmt.Fprintf(cfg.out, "%-10s %-11s %10s %12s %10s %12s\n",
		"dataset", "MAM", "PA", "compdists", "time", "storage(KB)")
	for _, name := range []string{"color", "words", "dna"} {
		ds := scaledDataset(cfg, name)
		for _, mam := range mamNames {
			br, err := buildMAM(mam, ds, cfg.seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "%-10s %-11s %10d %12d %10v %12d\n",
				ds.Name, mam, br.pa, br.cd, br.elapsed.Round(time.Millisecond), br.storage/1024)
		}
	}
	return nil
}

// table7 — update cost: average cost of inserting 100 random objects into
// each MAM built on Words.
func table7(cfg config) error {
	header(cfg.out, "Table 7: update cost on Words (average of 100 inserts)")
	fmt.Fprintf(cfg.out, "%-11s %10s %12s %14s\n", "MAM", "PA", "compdists", "time/insert")
	ds := scaledDataset(cfg, "words")
	fresh := dataset.Words(100, cfg.seed+999)
	inserts := make([]metric.Object, len(fresh.Objects))
	for i, o := range fresh.Objects {
		s := o.(*metric.Str)
		inserts[i] = metric.NewStr(uint64(10_000_000+i), s.S)
	}
	for _, mam := range mamNames {
		br, err := buildMAM(mam, ds, cfg.seed)
		if err != nil {
			return err
		}
		var paSum, cdSum int64
		start := time.Now()
		for _, o := range inserts {
			br.idx.ResetStats()
			if err := br.idx.Insert(o); err != nil {
				return fmt.Errorf("%s insert: %w", mam, err)
			}
			pa, cd := br.idx.Stats()
			paSum += pa
			cdSum += cd
		}
		elapsed := time.Since(start)
		n := int64(len(inserts))
		fmt.Fprintf(cfg.out, "%-11s %10.2f %12.2f %14v\n",
			mam, float64(paSum)/float64(n), float64(cdSum)/float64(n),
			(elapsed / time.Duration(n)).Round(time.Microsecond))
	}
	return nil
}
