package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// pr8 benchmarks blocked batch verification and the float32 vector kind
// (DESIGN.md §13) on the verification-heavy workloads: Words under edit
// distance, Color under L5 in both float64 and float32 representations, and
// Signature under Hamming. Each workload's tree is built once with greedy
// traversal on file-backed stores (so leaf candidate blocks really land via
// raf.ReadBatch) and queried in two modes that differ only in the batch
// toggle:
//
//	scalar  PR5's bounded path, one DistanceAtMost per candidate
//	batch   blocked verification: per-query state hoisted, whole leaf
//	        blocks evaluated through BatchDistanceAtMost
//
// Beyond timings, the experiment enforces the batch layer's
// machine-independent invariants and fails on violation — the CI gate:
//
//   - scalar and batch modes return byte-identical result sets (FNV-1a over
//     every (id, distance-bits) pair, in order) with identical compdists and
//     Abandoned counts,
//   - BatchedCandidates is zero in scalar mode and positive in batch mode
//     for every (dataset, op) cell — a silent fallback to the scalar path
//     fails the run,
//   - batch parallel verification (K = -workers) reproduces the batch serial
//     hashes, compdists and Abandoned exactly, and for range queries the
//     same BatchedCandidates (kNN block shapes are bound-dependent).
//
// The float32 story is the Color → Color32 column: the same cluster draw at
// half the payload width, batch-verified — the verify-stage ratio against
// Color's scalar float64 path is the PR's headline number.
//
// With -json FILE it writes the machine-readable BENCH_PR8.json report.
func pr8(cfg config) error {
	header(cfg.out, "PR8: blocked batch verification + float32 vectors, scalar vs batch")
	workers := cfg.workers
	if workers == 0 {
		workers = 8
	}
	report := pr8Report{
		N: cfg.n, Queries: cfg.queries, K: 8, Workers: workers,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		WarmSpeedup:      map[string]map[string]float64{},
		VerifySpeedup:    map[string]map[string]float64{},
		F32VerifySpeedup: map[string]float64{},
	}
	fmt.Fprintf(cfg.out, "%-10s %-6s %12s %12s %12s %12s %12s\n",
		"dataset", "op", "compdists/q", "scalar", "batch", "batch-par", "batched/q")

	// colorVerify[op] holds Color's scalar float64 verify time so the
	// Color32 pass can report the cross-representation speedup.
	colorVerify := map[string]float64{}
	for _, name := range []string{"words", "color", "color32", "signature"} {
		ds := scaledDataset(cfg, name)
		dir, err := os.MkdirTemp("", "spbbench-pr8-")
		if err != nil {
			return err
		}
		tree, err := pr8Tree(ds, cfg.seed, dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		fail := func(err error) error {
			tree.Close()
			os.RemoveAll(dir)
			return err
		}
		queries := ds.Queries(cfg.queries)
		r := 0.08 * ds.Distance.MaxDistance()

		for _, op := range []string{"knn", "range"} {
			tree.SetWorkers(1)
			tree.SetBatchKernels(false)
			scalar, err := pr8Measure(tree, queries, op, r)
			if err != nil {
				return fail(err)
			}
			tree.SetBatchKernels(true)
			batch, err := pr8Measure(tree, queries, op, r)
			if err != nil {
				return fail(err)
			}
			tree.SetWorkers(workers)
			par, err := pr8Measure(tree, queries, op, r)
			if err != nil {
				return fail(err)
			}
			tree.SetWorkers(1)
			for i, e := range []*pr8Entry{&scalar, &batch, &par} {
				e.Dataset, e.Op = ds.Name, op
				e.Mode = []string{"scalar", "batch", "batch-par"}[i]
				report.Entries = append(report.Entries, *e)
			}
			if err := pr8Check(scalar, batch, par, ds.Name, op); err != nil {
				return fail(err)
			}

			if _, ok := report.WarmSpeedup[ds.Name]; !ok {
				report.WarmSpeedup[ds.Name] = map[string]float64{}
				report.VerifySpeedup[ds.Name] = map[string]float64{}
			}
			report.WarmSpeedup[ds.Name][op] = scalar.WallUs / batch.WallUs
			report.VerifySpeedup[ds.Name][op] = scalar.VerifyUs / batch.VerifyUs
			if ds.Name == "Color" {
				colorVerify[op] = scalar.VerifyUs
			}
			if ds.Name == "Color32" && colorVerify[op] > 0 {
				report.F32VerifySpeedup[op] = colorVerify[op] / batch.VerifyUs
			}
			fmt.Fprintf(cfg.out, "%-10s %-6s %12.1f %10.0fµs %10.0fµs %10.0fµs %12.1f\n",
				ds.Name, op, batch.CD, scalar.VerifyUs, batch.VerifyUs, par.VerifyUs,
				float64(batch.Batched)/float64(len(queries)))
		}
		tree.Close()
		os.RemoveAll(dir)
	}
	for dsName, ops := range report.VerifySpeedup {
		for op, s := range ops {
			fmt.Fprintf(cfg.out, "batch %s speedup vs scalar-bounded [%s]: %.2fx verification stage, %.2fx end-to-end\n",
				op, dsName, s, report.WarmSpeedup[dsName][op])
		}
	}
	for op, s := range report.F32VerifySpeedup {
		fmt.Fprintf(cfg.out, "float32+batch %s verify speedup vs Color float64 scalar: %.2fx\n", op, s)
	}
	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr8Tree builds ds's tree with greedy traversal on file stores in dir, the
// configuration where whole leaf blocks reach the batch kernels.
func pr8Tree(ds dataset.Dataset, seed int64, dir string) (*core.Tree, error) {
	idx, err := page.NewFileStore(filepath.Join(dir, core.IndexPagesFile))
	if err != nil {
		return nil, err
	}
	data, err := page.NewFileStore(filepath.Join(dir, core.DataPagesFile))
	if err != nil {
		idx.Close()
		return nil, err
	}
	return buildSPB(ds, seed, core.Options{
		Traversal: core.Greedy, CacheSize: 1 << 16,
		IndexStore: idx, DataStore: data,
	})
}

// pr8Entry is one (dataset, op, mode) warm measurement, averaged per query.
// Hash folds every result's (id, distance-bits) pair in emission order
// across all queries, so equal hashes mean byte-identical answer sets.
type pr8Entry struct {
	Dataset   string  `json:"dataset"`
	Op        string  `json:"op"`
	Mode      string  `json:"mode"`
	WallUs    float64 `json:"wall_us_per_query"`
	VerifyUs  float64 `json:"verify_us_per_query"`
	CD        float64 `json:"compdists_per_query"`
	Abandoned int64   `json:"abandoned_total"`
	Batched   int64   `json:"batched_candidates_total"`
	Results   int     `json:"results_total"`
	Hash      uint64  `json:"result_hash"`
}

// pr8Report is the BENCH_PR8.json schema: the environment, every
// measurement, and the speedups of blocked batch verification over the
// scalar bounded path per dataset and operation.
type pr8Report struct {
	N          int        `json:"n"`
	Queries    int        `json:"queries"`
	K          int        `json:"k"`
	Workers    int        `json:"workers"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Entries    []pr8Entry `json:"entries"`
	// WarmSpeedup is end-to-end query wall time, scalar over batch; it
	// includes index traversal, which batching does not touch.
	WarmSpeedup map[string]map[string]float64 `json:"warm_speedup_vs_scalar"`
	// VerifySpeedup is the same ratio over the verification stage only
	// (QueryStats.VerifyTime: RAF reads plus distance computations) — the
	// part of the query blocked verification rewrites.
	VerifySpeedup map[string]map[string]float64 `json:"verify_speedup_vs_scalar"`
	// F32VerifySpeedup is the cross-representation headline: Color32's
	// batch verify stage against Color's scalar float64 verify stage, per
	// op — the combined payload-halving + hoisting win on the same points.
	F32VerifySpeedup map[string]float64 `json:"f32_verify_speedup_vs_f64_scalar"`
}

// pr8Measure runs the warm-cache protocol: one priming pass, one WithStats
// pass for counters and the result hash, one plain pass for wall time.
func pr8Measure(tree *core.Tree, queries []metric.Object, op string, r float64) (pr8Entry, error) {
	var e pr8Entry
	run := func(q metric.Object) ([]core.Result, error) {
		if op == "knn" {
			return tree.KNN(q, 8)
		}
		return tree.RangeQuery(q, r)
	}
	for _, q := range queries {
		if _, err := run(q); err != nil {
			return e, err
		}
	}
	h := fnv.New64a()
	var buf [16]byte
	for _, q := range queries {
		var res []core.Result
		var qs core.QueryStats
		var err error
		if op == "knn" {
			res, qs, err = tree.KNNWithStats(q, 8)
		} else {
			res, qs, err = tree.RangeSearchWithStats(q, r)
		}
		if err != nil {
			return e, err
		}
		e.Results += len(res)
		e.CD += float64(qs.Compdists)
		e.VerifyUs += float64(qs.VerifyTime.Microseconds())
		e.Abandoned += qs.Abandoned
		e.Batched += qs.BatchedCandidates
		for _, x := range res {
			binary.LittleEndian.PutUint64(buf[:8], x.Object.ID())
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(x.Dist))
			h.Write(buf[:])
		}
	}
	e.Hash = h.Sum64()
	var total time.Duration
	for _, q := range queries {
		start := time.Now()
		if _, err := run(q); err != nil {
			return e, err
		}
		total += time.Since(start)
	}
	nq := float64(len(queries))
	e.WallUs = float64(total.Microseconds()) / nq
	e.VerifyUs /= nq
	e.CD /= nq
	return e, nil
}

// pr8Check enforces the batch layer's machine-independent invariants for one
// (dataset, op) cell.
func pr8Check(scalar, batch, par pr8Entry, ds, op string) error {
	if scalar.Hash != batch.Hash || scalar.CD != batch.CD ||
		scalar.Results != batch.Results || scalar.Abandoned != batch.Abandoned {
		return fmt.Errorf("pr8: %s/%s: batch (hash=%x cd=%.1f results=%d abandoned=%d) != scalar (hash=%x cd=%.1f results=%d abandoned=%d)",
			ds, op, batch.Hash, batch.CD, batch.Results, batch.Abandoned,
			scalar.Hash, scalar.CD, scalar.Results, scalar.Abandoned)
	}
	if scalar.Batched != 0 {
		return fmt.Errorf("pr8: %s/%s: scalar mode counted %d batched candidates", ds, op, scalar.Batched)
	}
	if batch.Batched == 0 {
		return fmt.Errorf("pr8: %s/%s: batch mode batched no candidate; blocked verification is not wired in", ds, op)
	}
	if par.Hash != batch.Hash || par.CD != batch.CD || par.Abandoned != batch.Abandoned {
		return fmt.Errorf("pr8: %s/%s: batch parallel (hash=%x cd=%.1f abandoned=%d) != serial (hash=%x cd=%.1f abandoned=%d)",
			ds, op, par.Hash, par.CD, par.Abandoned, batch.Hash, batch.CD, batch.Abandoned)
	}
	if op == "range" && par.Batched != batch.Batched {
		return fmt.Errorf("pr8: %s/range: parallel batched %d candidates, serial %d", ds, par.Batched, batch.Batched)
	}
	if par.Batched == 0 {
		return fmt.Errorf("pr8: %s/%s: parallel batch mode batched no candidate", ds, op)
	}
	return nil
}
