package main

import (
	"fmt"
	"math"

	"spbtree/internal/core"
)

// accuracy is the paper's metric: 1 − |actual − estimated| / actual.
func accuracy(actual, estimated float64) float64 {
	if actual == 0 {
		return 0
	}
	return 1 - math.Abs(actual-estimated)/actual
}

// fig15 — range query cost model vs r: actual, estimated, accuracy for both
// PA and compdists.
func fig15(cfg config) error {
	header(cfg.out, "Fig. 15: range query cost model vs r (% of d+)")
	for _, name := range []string{"color", "words"} {
		ds := scaledDataset(cfg, name)
		tree, err := buildSPB(ds, cfg.seed, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "\n[%s]\n%5s %10s %10s %7s %10s %10s %7s\n",
			ds.Name, "r%", "actCD", "estCD", "accCD", "actPA", "estPA", "accPA")
		for _, rp := range []float64{2, 4, 6, 8, 16} {
			r := rp / 100 * ds.Distance.MaxDistance()
			var actCD, actPA, estCD, estPA float64
			queries := ds.Queries(cfg.queries)
			for _, q := range queries {
				est, err := tree.EstimateRange(q, r)
				if err != nil {
					return err
				}
				estCD += est.EDC
				estPA += est.EPA
				tree.ResetStats()
				if _, err := tree.RangeQuery(q, r); err != nil {
					return err
				}
				s := tree.TakeStats()
				actCD += float64(s.DistanceComputations)
				actPA += float64(s.PageAccesses)
			}
			n := float64(len(queries))
			actCD, actPA, estCD, estPA = actCD/n, actPA/n, estCD/n, estPA/n
			fmt.Fprintf(cfg.out, "%5g %10.1f %10.1f %6.0f%% %10.1f %10.1f %6.0f%%\n",
				rp, actCD, estCD, 100*accuracy(actCD, estCD), actPA, estPA, 100*accuracy(actPA, estPA))
		}
	}
	return nil
}

// fig16 — kNN query cost model vs k.
func fig16(cfg config) error {
	header(cfg.out, "Fig. 16: kNN query cost model vs k")
	for _, name := range []string{"color", "words"} {
		ds := scaledDataset(cfg, name)
		tree, err := buildSPB(ds, cfg.seed, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "\n[%s]\n%5s %10s %10s %7s %10s %10s %7s\n",
			ds.Name, "k", "actCD", "estCD", "accCD", "actPA", "estPA", "accPA")
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			var actCD, actPA, estCD, estPA float64
			queries := ds.Queries(cfg.queries)
			for _, q := range queries {
				est, err := tree.EstimateKNN(q, k)
				if err != nil {
					return err
				}
				estCD += est.EDC
				estPA += est.EPA
				tree.ResetStats()
				if _, err := tree.KNN(q, k); err != nil {
					return err
				}
				s := tree.TakeStats()
				actCD += float64(s.DistanceComputations)
				actPA += float64(s.PageAccesses)
			}
			n := float64(len(queries))
			actCD, actPA, estCD, estPA = actCD/n, actPA/n, estCD/n, estPA/n
			fmt.Fprintf(cfg.out, "%5d %10.1f %10.1f %6.0f%% %10.1f %10.1f %6.0f%%\n",
				k, actCD, estCD, 100*accuracy(actCD, estCD), actPA, estPA, 100*accuracy(actPA, estPA))
		}
	}
	return nil
}

// fig18 — similarity join cost model vs ε.
func fig18(cfg config) error {
	header(cfg.out, "Fig. 18: similarity join cost model vs eps (% of d+)")
	for _, name := range []string{"color", "signature"} {
		ds := scaledDataset(cfg, name)
		half := len(ds.Objects) / 2
		Q, O := ds.Objects[:half], ds.Objects[half:]
		opts := zorderOpts()
		opts.Distance = ds.Distance
		opts.Codec = ds.Codec
		opts.Seed = cfg.seed
		tq, err := core.Build(Q, opts)
		if err != nil {
			return err
		}
		oOpts := zorderOpts()
		oOpts.Distance = ds.Distance
		oOpts.Codec = ds.Codec
		oOpts.ShareMapping = tq
		to, err := core.Build(O, oOpts)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "\n[%s]\n%5s %12s %12s %7s %10s %10s %7s\n",
			ds.Name, "eps%", "actCD", "estCD", "accCD", "actPA", "estPA", "accPA")
		for _, ep := range []float64{2, 4, 6, 8, 10} {
			eps := ep / 100 * ds.Distance.MaxDistance()
			est, err := core.EstimateJoin(tq, to, eps)
			if err != nil {
				return err
			}
			tq.ResetStats()
			to.ResetStats()
			if _, err := core.Join(tq, to, eps); err != nil {
				return err
			}
			sq, so := tq.TakeStats(), to.TakeStats()
			actCD := float64(sq.DistanceComputations + so.DistanceComputations)
			actPA := float64(sq.PageAccesses + so.PageAccesses)
			fmt.Fprintf(cfg.out, "%5g %12.1f %12.1f %6.0f%% %10.1f %10.1f %6.0f%%\n",
				ep, actCD, est.EDC, 100*accuracy(actCD, est.EDC), actPA, est.EPA, 100*accuracy(actPA, est.EPA))
		}
	}
	return nil
}
