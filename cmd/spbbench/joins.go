package main

import (
	"fmt"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/join"
	"spbtree/internal/metric"
)

// fig17 — similarity join performance vs ε (% of d+): SPB-tree (SJA) vs
// eD-index-based join vs improved Quickjoin (QJA). As in the paper, QJA is
// in-memory so it reports no page accesses, and the eD-index must be rebuilt
// per ε (its buckets are ε-overloaded for a fixed ε₀) — its build cost is
// excluded, as the paper excludes it, but the rebuild limitation is why its
// applicability stops at small ε.
func fig17(cfg config) error {
	header(cfg.out, "Fig. 17: similarity join performance vs eps (% of d+)")
	epsPcts := []float64{2, 4, 6, 8, 10}
	for _, name := range []string{"signature", "color", "words", "dna"} {
		ds := scaledDataset(cfg, name)
		half := len(ds.Objects) / 2
		Q, O := ds.Objects[:half], ds.Objects[half:]

		fmt.Fprintf(cfg.out, "\n[%s]  |Q|=%d |O|=%d\n%-9s %6s %10s %12s %12s %10s\n",
			ds.Name, len(Q), len(O), "method", "eps%", "PA", "compdists", "time", "pairs")

		// SPB-tree SJA: both trees built once over a shared Z-order space.
		opts := zorderOpts()
		opts.Distance = ds.Distance
		opts.Codec = ds.Codec
		opts.Seed = cfg.seed
		tq, err := core.Build(Q, opts)
		if err != nil {
			return err
		}
		oOpts := zorderOpts()
		oOpts.Distance = ds.Distance
		oOpts.Codec = ds.Codec
		oOpts.ShareMapping = tq
		to, err := core.Build(O, oOpts)
		if err != nil {
			return err
		}
		for _, ep := range epsPcts {
			eps := ep / 100 * ds.Distance.MaxDistance()
			tq.ResetStats()
			to.ResetStats()
			start := time.Now()
			pairs, err := core.Join(tq, to, eps)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			sq, so := tq.TakeStats(), to.TakeStats()
			fmt.Fprintf(cfg.out, "%-9s %6g %10d %12d %12v %10d\n", "SPB-tree", ep,
				sq.PageAccesses+so.PageAccesses,
				sq.DistanceComputations+so.DistanceComputations,
				elapsed.Round(time.Microsecond), len(pairs))
		}

		// eD-index: rebuilt per ε (ε-overloading is baked in at build time).
		for _, ep := range epsPcts {
			eps := ep / 100 * ds.Distance.MaxDistance()
			ed, err := join.BuildED(Q, O, join.EDOptions{
				Distance: ds.Distance, Codec: ds.Codec, Eps0: eps, Seed: cfg.seed,
			})
			if err != nil {
				return err
			}
			ed.ResetStats()
			start := time.Now()
			pairs, err := ed.Join(eps, false)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			pa, cd := ed.TakeStats()
			fmt.Fprintf(cfg.out, "%-9s %6g %10d %12d %12v %10d\n", "eD-index", ep,
				pa, cd, elapsed.Round(time.Microsecond), len(pairs))
		}

		// Improved Quickjoin: in-memory, PA not applicable.
		for _, ep := range epsPcts {
			eps := ep / 100 * ds.Distance.MaxDistance()
			counter := metric.NewCounter(ds.Distance)
			qj := &join.Quickjoin{Dist: counter, Seed: cfg.seed}
			start := time.Now()
			pairs := qj.Join(Q, O, eps)
			elapsed := time.Since(start)
			fmt.Fprintf(cfg.out, "%-9s %6g %10s %12d %12v %10d\n", "QJA", ep,
				"-", counter.Count(), elapsed.Round(time.Microsecond), len(pairs))
		}
	}
	return nil
}

// joinSanity cross-checks the three joins against each other on a small
// slice; the harness runs it under -q as a safety net when experimenting
// with new datasets. (Exercised by the harness tests.)
func joinSanity(ds dataset.Dataset, eps float64, seed int64) error {
	half := len(ds.Objects) / 2
	Q, O := ds.Objects[:half], ds.Objects[half:]
	opts := zorderOpts()
	opts.Distance = ds.Distance
	opts.Codec = ds.Codec
	opts.Seed = seed
	tq, err := core.Build(Q, opts)
	if err != nil {
		return err
	}
	oOpts := zorderOpts()
	oOpts.Distance = ds.Distance
	oOpts.Codec = ds.Codec
	oOpts.ShareMapping = tq
	to, err := core.Build(O, oOpts)
	if err != nil {
		return err
	}
	spb, err := core.Join(tq, to, eps)
	if err != nil {
		return err
	}
	qj := &join.Quickjoin{Dist: ds.Distance, Seed: seed}
	quick := qj.Join(Q, O, eps)
	ed, err := join.BuildED(Q, O, join.EDOptions{Distance: ds.Distance, Codec: ds.Codec, Eps0: eps, Seed: seed})
	if err != nil {
		return err
	}
	edPairs, err := ed.Join(eps, false)
	if err != nil {
		return err
	}
	if len(spb) != len(quick) || len(spb) != len(edPairs) {
		return fmt.Errorf("join disagreement: SPB=%d QJA=%d eD=%d", len(spb), len(quick), len(edPairs))
	}
	return nil
}
