// Command spbbench regenerates every table and figure of the paper's
// evaluation (Section 6) on synthetic stand-ins for its datasets. Each
// subcommand prints the same rows or series the paper reports; DESIGN.md §4
// maps experiment ids to the modules under test and EXPERIMENTS.md records
// paper-vs-measured values.
//
// Usage:
//
//	spbbench [flags] <experiment>...
//	spbbench -n 20000 -q 100 all
//
// Experiments: table2 table4 table5 table6 table7 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 fig17 fig18 ablation forest pr4 pr5 pr6 pr8 pr9 pr10 all
//
// pr4 compares serial and parallel verification (see DESIGN.md §9) and
// enforces the engine's invariants; with -json FILE it writes the
// machine-readable BENCH_PR4.json report, and -workers sets the
// parallel-mode pool size.
//
// pr5 compares the threshold-aware distance kernels (DESIGN.md §10) against
// pre-kernel evaluation on the same persisted index and enforces the kernel
// layer's byte-identity invariants; with -json FILE it writes BENCH_PR5.json.
//
// pr6 exercises the durable write path (DESIGN.md §11): mixed read/write
// workloads (95/5 and 50/50) on Words and DNAEdit reporting acked-write
// latency percentiles, read-latency degradation versus an all-read baseline,
// the WAL's group-commit batching ratio, and acked writes/sec versus writer
// fan-in with fsync on and off; with -json FILE it writes BENCH_PR6.json.
//
// pr8 compares blocked batch verification (DESIGN.md §13) against the scalar
// bounded path on the same trees, including the float32 Color32 workload, and
// enforces the batch layer's byte-identity invariants; with -json FILE it
// writes BENCH_PR8.json.
//
// pr9 compares the approximate graph tier (DESIGN.md §14) — NN-descent
// construction plus beam search — against exact kNN, sweeping the beam width
// and reporting recall@10 and latency; it enforces the recall floor and the
// exact path's post-BuildGraph byte identity, and with -json FILE it writes
// BENCH_PR9.json.
//
// pr10 compares the adaptive query planner and staged scatter (DESIGN.md
// §15) against fixed execution: planner-on versus DisablePlanner on single
// trees and the staged/pruned forest scatter versus the flat one. It
// enforces byte-identical results, equal single-tree distance work, the
// staged scatter's fan-out reduction, and a never-materially-slower wall
// guard; with -json FILE it writes BENCH_PR10.json.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

func main() {
	var cfg config
	var debugAddr string
	flag.IntVar(&cfg.n, "n", 10000, "dataset cardinality (the paper uses 112K-1M)")
	flag.IntVar(&cfg.queries, "q", 50, "measured queries per point (the paper uses 500)")
	flag.Int64Var(&cfg.seed, "seed", 1, "dataset and pivot-selection seed")
	flag.IntVar(&cfg.workers, "workers", 0, "pr4/pr5: parallel-mode verifier pool size; pr6: harness goroutines (0 = 8)")
	flag.StringVar(&cfg.jsonPath, "json", "", "pr4/pr5/pr6/pr8: write a machine-readable report to this file")
	flag.StringVar(&debugAddr, "debugaddr", "", "serve /debug/vars and /debug/pprof on this address while experiments run")
	flag.Parse()
	cfg.out = os.Stdout
	if debugAddr != "" {
		ln, err := startDebugServer(debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s\n", ln.Addr())
	}

	if flag.NArg() == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nexperiments: table2 table4 table5 table6 table7 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 ablation forest pr4 pr5 pr6 pr8 pr9 pr10 all")
		os.Exit(2)
	}

	experiments := map[string]func(config) error{
		"table2":   table2,
		"table4":   table4,
		"table5":   table5,
		"table6":   table6,
		"table7":   table7,
		"fig9":     fig9,
		"fig10":    fig10,
		"fig11":    fig11,
		"fig12":    fig12,
		"fig13":    fig13,
		"fig14":    fig14,
		"fig15":    fig15,
		"fig16":    fig16,
		"fig17":    fig17,
		"fig18":    fig18,
		"ablation": ablation,
		"forest":   forestExp,
		"pr4":      pr4,
		"pr5":      pr5,
		"pr6":      pr6,
		"pr8":      pr8,
		"pr9":      pr9,
		"pr10":     pr10,
	}
	order := []string{"table2", "table4", "fig9", "fig10", "table5", "fig11",
		"table6", "table7", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation", "forest", "pr4", "pr5", "pr6", "pr8", "pr9", "pr10"}

	var names []string
	for _, arg := range flag.Args() {
		if arg == "all" {
			names = append(names, order...)
			continue
		}
		if _, ok := experiments[arg]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", arg)
			os.Exit(2)
		}
		names = append(names, arg)
	}

	for _, name := range names {
		start := time.Now()
		if err := experiments[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(cfg.out, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// startDebugServer serves expvar (/debug/vars) and pprof (/debug/pprof/) on
// addr for the duration of the run, so long experiments can be profiled and
// their aggregate metrics scraped live.
func startDebugServer(addr string) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln, nil
}
