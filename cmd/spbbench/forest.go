package main

import (
	"fmt"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/forest"
)

// forestExp — the distributed extension's scaling profile: kNN latency and
// cluster-wide work as the shard count grows (at fixed total cardinality),
// plus the parallel shard-pair join. Not a paper experiment; it quantifies
// the "extend to distributed environments" future-work direction.
func forestExp(cfg config) error {
	header(cfg.out, "Forest: shard-count scaling (extension, not in the paper)")
	ds := scaledDataset(cfg, "synthetic")
	queries := ds.Queries(cfg.queries)
	fmt.Fprintf(cfg.out, "%7s %14s %12s %14s\n", "shards", "kNN latency", "total PA", "total dists")
	for _, shards := range []int{1, 2, 4, 8} {
		f, err := forest.Build(ds.Objects, forest.Options{
			Tree:   core.Options{Distance: ds.Distance, Codec: ds.Codec, Seed: cfg.seed},
			Shards: shards,
		})
		if err != nil {
			return err
		}
		var elapsed time.Duration
		var pa, cd int64
		for _, q := range queries {
			f.ResetStats()
			start := time.Now()
			if _, err := f.KNN(q, 8); err != nil {
				return err
			}
			elapsed += time.Since(start)
			st := f.TakeStats()
			pa += st.PageAccesses
			cd += st.DistanceComputations
		}
		n := int64(len(queries))
		fmt.Fprintf(cfg.out, "%7d %14v %12.1f %14.1f\n", shards,
			(elapsed / time.Duration(n)).Round(time.Microsecond),
			float64(pa)/float64(n), float64(cd)/float64(n))
	}
	return nil
}
