package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/metric"
	"spbtree/internal/page"
)

// pr5 benchmarks the threshold-aware distance kernels (DESIGN.md §10) on the
// verification-heavy workloads: Words and DNAEdit under edit distance, Color
// under L5. Each workload's tree is built once with the current metric,
// persisted, and reopened with a bench-local replica of the pre-kernel
// distance functions (textbook O(mn) dynamic-programming Levenshtein,
// math.Pow-based L5) — so all three query modes traverse the *same* index
// and differ only in the distance kernel:
//
//	prepr    pre-kernel evaluation, the speedup baseline
//	exact    bit-parallel / fast-power kernels, bound-awareness off
//	bounded  the same kernels fed the caller's live bound
//
// Beyond reporting warm kNN and range timings, the experiment enforces the
// kernel layer's invariants and fails on violation — the CI regression gate:
//
//   - exact and bounded modes return byte-identical result sets (FNV-1a over
//     every (id, distance-bits) pair, in order) with identical compdists,
//   - on the edit-distance workloads the prepr mode agrees too (integer
//     distances: the bit-parallel kernels must reproduce the DP exactly;
//     Color is exempt because math.Pow differs from the fast power in the
//     last ulp),
//   - Abandoned is zero in prepr and exact modes, and positive for bounded
//     queries on Words (the band-collapse workload),
//   - bounded parallel verification (K = -workers) reproduces the bounded
//     serial hashes, compdists and Abandoned exactly.
//
// With -json FILE it writes the machine-readable BENCH_PR5.json report.
func pr5(cfg config) error {
	header(cfg.out, "PR5: threshold-aware distance kernels, pre-kernel vs exact vs bounded")
	workers := cfg.workers
	if workers == 0 {
		workers = 8
	}
	report := pr5Report{
		N: cfg.n, Queries: cfg.queries, K: 8, Workers: workers,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WarmSpeedup:   map[string]map[string]float64{},
		VerifySpeedup: map[string]map[string]float64{},
		KernelSpeedup: map[string]map[string]float64{},
	}
	fmt.Fprintf(cfg.out, "%-10s %-6s %12s %12s %12s %12s %10s\n",
		"dataset", "op", "compdists/q", "prepr", "exact", "bounded", "abandon/q")

	for _, name := range []string{"words", "dnaedit", "color"} {
		ds := scaledDataset(cfg, name)
		dir, err := os.MkdirTemp("", "spbbench-pr5-")
		if err != nil {
			return err
		}
		fast, prepr, err := pr5Trees(ds, cfg.seed, dir)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		queries := ds.Queries(cfg.queries)
		r := 0.08 * ds.Distance.MaxDistance()
		abandonedOnWords := int64(0)

		for _, op := range []string{"knn", "range"} {
			entries := map[string]pr5Entry{}
			for _, mode := range []string{"prepr", "exact", "bounded"} {
				tree := fast
				switch mode {
				case "prepr":
					tree = prepr
				case "exact":
					fast.SetBoundedKernels(false)
				case "bounded":
					fast.SetBoundedKernels(true)
				}
				tree.SetWorkers(1)
				e, err := pr5Measure(tree, queries, op, r)
				if err != nil {
					fast.Close()
					prepr.Close()
					os.RemoveAll(dir)
					return err
				}
				e.Dataset, e.Op, e.Mode = ds.Name, op, mode
				entries[mode] = e
				report.Entries = append(report.Entries, e)
			}
			if err := pr5Check(entries, ds.Name, op); err != nil {
				fast.Close()
				prepr.Close()
				os.RemoveAll(dir)
				return err
			}
			abandonedOnWords += entries["bounded"].Abandoned

			// The bounded kernels must compose with the parallel engine:
			// worker probes against the committed bound plus commit-time
			// re-verification reproduce the serial run exactly.
			fast.SetWorkers(workers)
			par, err := pr5Measure(fast, queries, op, r)
			if err != nil {
				fast.Close()
				prepr.Close()
				os.RemoveAll(dir)
				return err
			}
			ser := entries["bounded"]
			if par.Hash != ser.Hash || par.CD != ser.CD || par.Abandoned != ser.Abandoned {
				fast.Close()
				prepr.Close()
				os.RemoveAll(dir)
				return fmt.Errorf("pr5: %s/%s: bounded parallel (hash=%x cd=%.1f abandoned=%d) != serial (hash=%x cd=%.1f abandoned=%d)",
					ds.Name, op, par.Hash, par.CD, par.Abandoned, ser.Hash, ser.CD, ser.Abandoned)
			}
			fast.SetWorkers(1)

			if _, ok := report.WarmSpeedup[ds.Name]; !ok {
				report.WarmSpeedup[ds.Name] = map[string]float64{}
				report.VerifySpeedup[ds.Name] = map[string]float64{}
				report.KernelSpeedup[ds.Name] = map[string]float64{}
			}
			report.WarmSpeedup[ds.Name][op] = entries["prepr"].WallUs / entries["bounded"].WallUs
			report.VerifySpeedup[ds.Name][op] = entries["prepr"].VerifyUs / entries["bounded"].VerifyUs

			// Kernel-level timing: the same candidate evaluations the verify
			// stage performs, at the op's operative threshold, stripped of
			// RAF reads and traversal — the per-compdist cost this PR
			// rewrites.
			bounds := make([]float64, len(queries))
			for i, q := range queries {
				bounds[i] = r
				if op == "knn" {
					res, err := fast.KNN(q, 8)
					if err != nil {
						fast.Close()
						prepr.Close()
						os.RemoveAll(dir)
						return err
					}
					bounds[i] = ds.Distance.MaxDistance()
					if len(res) > 0 {
						bounds[i] = res[len(res)-1].Dist
					}
				}
			}
			sample := pr5Sample(ds.Objects, 200)
			preprDist := preprDistance(ds)
			preprNs := pr5TimeKernel(func(q, o metric.Object, t float64) float64 {
				return preprDist.Distance(q, o)
			}, queries, sample, bounds)
			boundedNs := pr5TimeKernel(func(q, o metric.Object, t float64) float64 {
				d, _ := metric.DistanceAtMost(ds.Distance, q, o, t)
				return d
			}, queries, sample, bounds)
			report.KernelSpeedup[ds.Name][op] = float64(preprNs) / float64(boundedNs)
			fmt.Fprintf(cfg.out, "%-10s %-6s %12.1f %10.0fµs %10.0fµs %10.0fµs %10.1f\n",
				ds.Name, op, entries["bounded"].CD,
				entries["prepr"].WallUs, entries["exact"].WallUs, entries["bounded"].WallUs,
				float64(entries["bounded"].Abandoned)/float64(len(queries)))
		}
		if ds.Name == "Words" && abandonedOnWords == 0 {
			fast.Close()
			prepr.Close()
			os.RemoveAll(dir)
			return fmt.Errorf("pr5: Words: bounded mode abandoned no evaluation; kernels are not wired into verification")
		}
		fast.Close()
		prepr.Close()
		os.RemoveAll(dir)
	}
	for dsName, ops := range report.WarmSpeedup {
		for op, s := range ops {
			fmt.Fprintf(cfg.out, "warm %s speedup vs pre-kernel [%s]: %.2fx end-to-end, %.2fx verification stage, %.2fx distance kernel\n",
				op, dsName, s, report.VerifySpeedup[dsName][op], report.KernelSpeedup[dsName][op])
		}
	}
	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr5Trees builds ds's tree with the current metric on file stores in dir,
// persists it, and reopens the same index with the pre-kernel distance
// replica — two handles over one tree, differing only in the kernel.
func pr5Trees(ds dataset.Dataset, seed int64, dir string) (fast, prepr *core.Tree, err error) {
	idx, err := page.NewFileStore(filepath.Join(dir, core.IndexPagesFile))
	if err != nil {
		return nil, nil, err
	}
	data, err := page.NewFileStore(filepath.Join(dir, core.DataPagesFile))
	if err != nil {
		idx.Close()
		return nil, nil, err
	}
	fast, err = buildSPB(ds, seed, core.Options{
		Traversal: core.Greedy, CacheSize: 1 << 16,
		IndexStore: idx, DataStore: data,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := fast.SaveAtomic(dir); err != nil {
		fast.Close()
		return nil, nil, err
	}
	prepr, err = core.Load(dir, core.LoadOptions{
		Distance: preprDistance(ds), Codec: ds.Codec,
		Traversal: core.Greedy, CacheSize: 1 << 16,
	})
	if err != nil {
		fast.Close()
		return nil, nil, err
	}
	return fast, prepr, nil
}

// preprDistance returns the bench-local pre-kernel distance replica for ds.
func preprDistance(ds dataset.Dataset) metric.DistanceFunc {
	switch ds.Name {
	case "Words", "DNAEdit":
		return preprEditDistance{maxLen: int(ds.Distance.MaxDistance())}
	case "Color":
		return preprL5{dim: 16}
	}
	panic("pr5: no pre-kernel replica for " + ds.Name)
}

// pr5Entry is one (dataset, op, mode) warm measurement, averaged per query.
// Hash folds every result's (id, distance-bits) pair in emission order
// across all queries, so equal hashes mean byte-identical answer sets.
type pr5Entry struct {
	Dataset   string  `json:"dataset"`
	Op        string  `json:"op"`
	Mode      string  `json:"mode"`
	WallUs    float64 `json:"wall_us_per_query"`
	VerifyUs  float64 `json:"verify_us_per_query"`
	CD        float64 `json:"compdists_per_query"`
	Abandoned int64   `json:"abandoned_total"`
	Results   int     `json:"results_total"`
	Hash      uint64  `json:"result_hash"`
}

// pr5Report is the BENCH_PR5.json schema: the environment, every
// measurement, and the warm speedups of bounded kernels over the pre-kernel
// baseline per dataset and operation.
type pr5Report struct {
	N          int        `json:"n"`
	Queries    int        `json:"queries"`
	K          int        `json:"k"`
	Workers    int        `json:"workers"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Entries    []pr5Entry `json:"entries"`
	// WarmSpeedup is end-to-end query wall time, prepr over bounded; it
	// includes index traversal, which the kernels do not touch.
	WarmSpeedup map[string]map[string]float64 `json:"warm_speedup_vs_prepr"`
	// VerifySpeedup is the same ratio over the verification stage only
	// (QueryStats.VerifyTime: RAF reads plus distance computations) — the
	// part of the query the kernels rewrite.
	VerifySpeedup map[string]map[string]float64 `json:"verify_speedup_vs_prepr"`
	// KernelSpeedup is the ratio over the raw distance evaluations alone,
	// replayed at the op's operative thresholds over a fixed candidate
	// sample — the per-compdist cost, free of RAF and traversal noise.
	KernelSpeedup map[string]map[string]float64 `json:"kernel_speedup_vs_prepr"`
}

// pr5Measure runs the warm-cache protocol: one priming pass, one WithStats
// pass for counters and the result hash, one plain pass for wall time (so
// timings are not skewed by the per-stage clocks of the stats path).
func pr5Measure(tree *core.Tree, queries []metric.Object, op string, r float64) (pr5Entry, error) {
	var e pr5Entry
	run := func(q metric.Object) ([]core.Result, error) {
		if op == "knn" {
			return tree.KNN(q, 8)
		}
		return tree.RangeQuery(q, r)
	}
	for _, q := range queries {
		if _, err := run(q); err != nil {
			return e, err
		}
	}
	h := fnv.New64a()
	var buf [16]byte
	for _, q := range queries {
		var res []core.Result
		var qs core.QueryStats
		var err error
		if op == "knn" {
			res, qs, err = tree.KNNWithStats(q, 8)
		} else {
			res, qs, err = tree.RangeSearchWithStats(q, r)
		}
		if err != nil {
			return e, err
		}
		e.Results += len(res)
		e.CD += float64(qs.Compdists)
		e.VerifyUs += float64(qs.VerifyTime.Microseconds())
		e.Abandoned += qs.Abandoned
		for _, x := range res {
			binary.LittleEndian.PutUint64(buf[:8], x.Object.ID())
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(x.Dist))
			h.Write(buf[:])
		}
	}
	e.Hash = h.Sum64()
	var total time.Duration
	for _, q := range queries {
		start := time.Now()
		if _, err := run(q); err != nil {
			return e, err
		}
		total += time.Since(start)
	}
	nq := float64(len(queries))
	e.WallUs = float64(total.Microseconds()) / nq
	e.VerifyUs /= nq
	e.CD /= nq
	return e, nil
}

// pr5Sample stride-samples up to max objects, deterministically.
func pr5Sample(objs []metric.Object, max int) []metric.Object {
	if len(objs) <= max {
		return objs
	}
	step := len(objs) / max
	out := make([]metric.Object, 0, max)
	for i := 0; i < len(objs) && len(out) < max; i += step {
		out = append(out, objs[i])
	}
	return out
}

// pr5TimeKernel times eval over every (query, sample, per-query bound)
// triple, repeating the pass until the measurement is long enough to be
// stable, and returns the per-pass duration.
func pr5TimeKernel(eval func(q, o metric.Object, t float64) float64, queries, sample []metric.Object, bounds []float64) time.Duration {
	var sink float64
	reps := 0
	start := time.Now()
	for reps < 3 || time.Since(start) < 50*time.Millisecond {
		for i, q := range queries {
			t := bounds[i]
			for _, o := range sample {
				sink += eval(q, o, t)
			}
		}
		reps++
	}
	pr5Sink = sink
	return time.Since(start) / time.Duration(reps)
}

// pr5Sink keeps the timed evaluations observable so they cannot be elided.
var pr5Sink float64

// pr5Check enforces the kernel layer's machine-independent invariants for
// one (dataset, op) cell.
func pr5Check(entries map[string]pr5Entry, ds, op string) error {
	prepr, exact, bounded := entries["prepr"], entries["exact"], entries["bounded"]
	if exact.Hash != bounded.Hash || exact.CD != bounded.CD || exact.Results != bounded.Results {
		return fmt.Errorf("pr5: %s/%s: bounded (hash=%x cd=%.1f results=%d) != exact (hash=%x cd=%.1f results=%d)",
			ds, op, bounded.Hash, bounded.CD, bounded.Results, exact.Hash, exact.CD, exact.Results)
	}
	if ds != "Color" && (prepr.Hash != exact.Hash || prepr.CD != exact.CD) {
		return fmt.Errorf("pr5: %s/%s: pre-kernel DP (hash=%x cd=%.1f) != bit-parallel kernel (hash=%x cd=%.1f)",
			ds, op, prepr.Hash, prepr.CD, exact.Hash, exact.CD)
	}
	if prepr.Abandoned != 0 || exact.Abandoned != 0 {
		return fmt.Errorf("pr5: %s/%s: abandoned counts outside bounded mode: prepr=%d exact=%d",
			ds, op, prepr.Abandoned, exact.Abandoned)
	}
	return nil
}

// preprEditDistance replicates the pre-kernel Levenshtein: the full O(mn)
// two-row dynamic program with heap-allocated rows and no early exit.
type preprEditDistance struct{ maxLen int }

// Distance implements metric.DistanceFunc.
func (e preprEditDistance) Distance(a, b metric.Object) float64 {
	sa, sb := a.(*metric.Str).S, b.(*metric.Str).S
	m, n := len(sa), len(sb)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			c := prev[j-1]
			if sa[i-1] != sb[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return float64(prev[n])
}

// MaxDistance implements metric.DistanceFunc.
func (e preprEditDistance) MaxDistance() float64 { return float64(e.maxLen) }

// Discrete implements metric.DistanceFunc.
func (e preprEditDistance) Discrete() bool { return true }

// Name implements metric.DistanceFunc.
func (e preprEditDistance) Name() string { return "edit-dp" }

// preprL5 replicates the pre-kernel Minkowski-5 distance: math.Pow per
// coordinate and for the final root.
type preprL5 struct{ dim int }

// Distance implements metric.DistanceFunc.
func (p preprL5) Distance(a, b metric.Object) float64 {
	va, vb := a.(*metric.Vector).Coords, b.(*metric.Vector).Coords
	s := 0.0
	for i := range va {
		s += math.Pow(math.Abs(va[i]-vb[i]), 5)
	}
	return math.Pow(s, 1.0/5)
}

// MaxDistance implements metric.DistanceFunc.
func (p preprL5) MaxDistance() float64 { return math.Pow(float64(p.dim), 1.0/5) }

// Discrete implements metric.DistanceFunc.
func (p preprL5) Discrete() bool { return false }

// Name implements metric.DistanceFunc.
func (p preprL5) Name() string { return "L5-pow" }
