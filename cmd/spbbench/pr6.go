package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/dataset"
	"spbtree/internal/metric"
)

// pr6 benchmarks the durable write path (DESIGN.md §11) on the edit-distance
// workloads: a group-committed WAL absorbing inserts/deletes into an
// in-memory delta while queries keep flowing. Two experiment families:
//
//   - Mixed read/write workloads (95/5 and 50/50) on Words and DNAEdit:
//     harness goroutines interleave warm 8-NN queries with delete/re-insert
//     toggles over a partitioned object pool, reporting acked-write latency
//     percentiles, read-latency percentiles versus an all-read baseline at
//     the same concurrency, and the WAL's group-commit batching ratio.
//
//   - Pure write throughput on Words: acked writes/sec versus writer
//     concurrency (1, 4, 16), with the WAL fsync on and off — the cost of
//     durability and the batching the group commit wins back under load.
//
// The run doubles as a correctness gate: every operation must succeed, and
// after each mix the pool is restored, the delta folded down with
// CompactNow, and the live count checked against the dataset cardinality —
// a mixed workload that loses or duplicates a write fails the experiment.
//
// With -json FILE it writes the machine-readable BENCH_PR6.json report.
func pr6(cfg config) error {
	header(cfg.out, "PR6: durable write path, mixed read/write workloads")
	workers := cfg.workers
	if workers == 0 {
		workers = 8
	}
	report := pr6Report{
		N: cfg.n, Queries: cfg.queries, K: 8, Workers: workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(cfg.out, "%-10s %-6s %10s %10s %10s %10s %10s %8s\n",
		"dataset", "mix", "read p50", "read p95", "write p50", "write p95", "write p99", "batch")
	for _, name := range []string{"words", "dnaedit"} {
		ds := scaledDataset(cfg, name)
		dir, err := os.MkdirTemp("", "spbbench-pr6-")
		if err != nil {
			return err
		}
		tree, err := core.CreateDurable(dir, ds.Objects, core.Options{
			Distance: ds.Distance, Codec: ds.Codec, Seed: cfg.seed,
		}, core.DurableOptions{})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		tree.SetWorkers(1) // concurrency comes from harness goroutines
		queries := ds.Queries(cfg.queries)
		totalOps := cfg.queries * 32

		// All-read baseline at the same harness concurrency: the denominator
		// of the read-degradation ratio.
		base, err := pr6Mixed(tree, ds, queries, workers, totalOps, 0, cfg.seed)
		if err != nil {
			tree.Close()
			os.RemoveAll(dir)
			return err
		}

		for _, pct := range []int{5, 50} {
			m, err := pr6Mixed(tree, ds, queries, workers, totalOps, pct, cfg.seed)
			if err != nil {
				tree.Close()
				os.RemoveAll(dir)
				return err
			}
			m.Dataset = ds.Name
			m.BaselineReadP50us, m.BaselineReadP95us = base.ReadP50us, base.ReadP95us
			if base.ReadP50us > 0 {
				m.ReadDegradation = m.ReadP50us / base.ReadP50us
			}
			report.Mixes = append(report.Mixes, m)
			fmt.Fprintf(cfg.out, "%-10s %2d%%wr %8.0fµs %8.0fµs %8.0fµs %8.0fµs %8.0fµs %7.1fx\n",
				ds.Name, pct, m.ReadP50us, m.ReadP95us, m.WriteP50us, m.WriteP95us, m.WriteP99us, m.BatchRatio)
		}
		tree.Close()
		os.RemoveAll(dir)
	}

	// Pure write throughput: Words, writer fan-in 1/4/16, fsync on and off.
	fmt.Fprintf(cfg.out, "%-10s %8s %7s %12s %10s %8s\n",
		"dataset", "writers", "fsync", "acked/s", "write p50", "batch")
	ds := scaledDataset(cfg, "words")
	for _, fsync := range []bool{true, false} {
		dir, err := os.MkdirTemp("", "spbbench-pr6-")
		if err != nil {
			return err
		}
		tree, err := core.CreateDurable(dir, ds.Objects, core.Options{
			Distance: ds.Distance, Codec: ds.Codec, Seed: cfg.seed,
		}, core.DurableOptions{NoSync: !fsync})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		tree.SetWorkers(1)
		for _, writers := range []int{1, 4, 16} {
			tp, err := pr6Throughput(tree, ds, writers, 300)
			if err != nil {
				tree.Close()
				os.RemoveAll(dir)
				return err
			}
			tp.Dataset, tp.Fsync = ds.Name, fsync
			report.Throughput = append(report.Throughput, tp)
			fmt.Fprintf(cfg.out, "%-10s %8d %7v %12.0f %8.0fµs %7.1fx\n",
				ds.Name, writers, fsync, tp.AckedPerSec, tp.WriteP50us, tp.BatchRatio)
		}
		tree.Close()
		os.RemoveAll(dir)
	}

	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// pr6Report is the BENCH_PR6.json schema.
type pr6Report struct {
	N          int `json:"n"`
	Queries    int `json:"queries"`
	K          int `json:"k"`
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Mixes holds one entry per (dataset, write-percentage) cell.
	Mixes []pr6MixEntry `json:"mixes"`
	// Throughput holds the acked-writes/sec table (writer fan-in × fsync).
	Throughput []pr6ThroughputEntry `json:"write_throughput"`
}

// pr6MixEntry is one mixed-workload measurement.
type pr6MixEntry struct {
	Dataset  string `json:"dataset"`
	WritePct int    `json:"write_pct"`
	Reads    int    `json:"reads"`
	Writes   int    `json:"writes"`
	// Read latency under the mix, and under the all-read baseline at the
	// same concurrency; ReadDegradation is their p50 ratio.
	ReadP50us         float64 `json:"read_p50_us"`
	ReadP95us         float64 `json:"read_p95_us"`
	BaselineReadP50us float64 `json:"baseline_read_p50_us"`
	BaselineReadP95us float64 `json:"baseline_read_p95_us"`
	ReadDegradation   float64 `json:"read_degradation_p50"`
	// Acked-write latency percentiles: Insert/Delete wall time including the
	// group-commit wait for the WAL fsync.
	WriteP50us float64 `json:"write_p50_us"`
	WriteP95us float64 `json:"write_p95_us"`
	WriteP99us float64 `json:"write_p99_us"`
	// WAL counters over the mix; BatchRatio is appends per group commit.
	WALAppends int64   `json:"wal_appends"`
	WALBatches int64   `json:"wal_batches"`
	BatchRatio float64 `json:"batch_ratio"`
	// DeltaAfter is the write-buffer size when the mix finished (before the
	// verification CompactNow).
	DeltaAfter int `json:"delta_after"`
}

// pr6ThroughputEntry is one pure-write throughput measurement.
type pr6ThroughputEntry struct {
	Dataset     string  `json:"dataset"`
	Writers     int     `json:"writers"`
	Fsync       bool    `json:"fsync"`
	Writes      int     `json:"writes"`
	AckedPerSec float64 `json:"acked_per_sec"`
	WriteP50us  float64 `json:"write_p50_us"`
	WriteP99us  float64 `json:"write_p99_us"`
	BatchRatio  float64 `json:"batch_ratio"`
}

// pr6Mixed runs one mixed workload: `workers` goroutines each execute
// totalOps/workers operations, each a warm 8-NN query or — with probability
// writePct% — a delete/re-insert toggle over the worker's private slice of
// the object pool (private so concurrent deletes never race on one id).
// Afterwards every deleted object is restored, the delta folded down with
// CompactNow, and the live count checked against the dataset cardinality.
func pr6Mixed(tree *core.Tree, ds dataset.Dataset, queries []metric.Object, workers, totalOps, writePct int, seed int64) (pr6MixEntry, error) {
	var e pr6MixEntry
	e.WritePct = writePct

	// The write pool: up to a fifth of the dataset, split across workers.
	poolSize := len(ds.Objects) / 5
	if poolSize < workers {
		poolSize = workers
	}
	pool := ds.Objects[:poolSize]
	per := totalOps / workers

	ws, _ := tree.WALStats()
	startAppends, startBatches := ws.Appends, ws.Batches

	type lane struct {
		reads, writes []float64 // latencies, µs
		deleted       []metric.Object
		err           error
	}
	lanes := make([]lane, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ln := &lanes[w]
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			mine := pool[w*len(pool)/workers : (w+1)*len(pool)/workers]
			next := 0
			gone := map[int]bool{}
			for i := 0; i < per; i++ {
				if writePct > 0 && rng.Intn(100) < writePct {
					j := next % len(mine)
					next++
					start := time.Now()
					var err error
					if gone[j] {
						err = tree.Insert(mine[j])
					} else {
						err = tree.Delete(mine[j])
					}
					ln.writes = append(ln.writes, float64(time.Since(start).Microseconds()))
					if err != nil {
						ln.err = fmt.Errorf("worker %d op %d: %w", w, i, err)
						return
					}
					gone[j] = !gone[j]
				} else {
					q := queries[(w*per+i)%len(queries)]
					start := time.Now()
					if _, err := tree.KNN(q, 8); err != nil {
						ln.err = fmt.Errorf("worker %d query %d: %w", w, i, err)
						return
					}
					ln.reads = append(ln.reads, float64(time.Since(start).Microseconds()))
				}
			}
			for j, g := range gone {
				if g {
					ln.deleted = append(ln.deleted, mine[j])
				}
			}
		}(w)
	}
	wg.Wait()

	var reads, writes []float64
	var deleted []metric.Object
	for i := range lanes {
		if lanes[i].err != nil {
			return e, lanes[i].err
		}
		reads = append(reads, lanes[i].reads...)
		writes = append(writes, lanes[i].writes...)
		deleted = append(deleted, lanes[i].deleted...)
	}
	e.Reads, e.Writes = len(reads), len(writes)
	e.ReadP50us, e.ReadP95us = pr6Pct(reads, 50), pr6Pct(reads, 95)
	e.WriteP50us, e.WriteP95us, e.WriteP99us = pr6Pct(writes, 50), pr6Pct(writes, 95), pr6Pct(writes, 99)
	e.DeltaAfter = tree.DeltaLen()
	if ws, ok := tree.WALStats(); ok {
		e.WALAppends, e.WALBatches = ws.Appends-startAppends, ws.Batches-startBatches
		if e.WALBatches > 0 {
			e.BatchRatio = float64(e.WALAppends) / float64(e.WALBatches)
		}
	}

	// Restore, fold, verify: the workload must conserve the live set.
	for _, o := range deleted {
		if err := tree.Insert(o); err != nil {
			return e, fmt.Errorf("pr6: restore %d: %w", o.ID(), err)
		}
	}
	if err := tree.CompactNow(); err != nil {
		return e, fmt.Errorf("pr6: compact after mix: %w", err)
	}
	if got := tree.Len(); got != len(ds.Objects) {
		return e, fmt.Errorf("pr6: %s %d%%wr: %d live objects after restore+compact, want %d — a write was lost or duplicated",
			ds.Name, writePct, got, len(ds.Objects))
	}
	return e, nil
}

// pr6Throughput hammers the tree with pure writes: each writer toggles
// delete/re-insert over its private pool slice as fast as acknowledgements
// come back, then the pool is restored and the delta compacted.
func pr6Throughput(tree *core.Tree, ds dataset.Dataset, writers, perWriter int) (pr6ThroughputEntry, error) {
	var e pr6ThroughputEntry
	e.Writers, e.Writes = writers, writers*perWriter
	poolSize := len(ds.Objects) / 5
	if poolSize < writers {
		poolSize = writers
	}
	pool := ds.Objects[:poolSize]

	ws, _ := tree.WALStats()
	startAppends, startBatches := ws.Appends, ws.Batches

	lat := make([][]float64, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := pool[w*len(pool)/writers : (w+1)*len(pool)/writers]
			gone := make([]bool, len(mine))
			for i := 0; i < perWriter; i++ {
				j := i % len(mine)
				opStart := time.Now()
				var err error
				if gone[j] {
					err = tree.Insert(mine[j])
				} else {
					err = tree.Delete(mine[j])
				}
				lat[w] = append(lat[w], float64(time.Since(opStart).Microseconds()))
				if err != nil {
					errs[w] = fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
				gone[j] = !gone[j]
			}
			// Restore this writer's pool slice inline (unmeasured).
			for j, g := range gone {
				if g {
					if err := tree.Insert(mine[j]); err != nil {
						errs[w] = fmt.Errorf("writer %d restore: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for w := range lat {
		if errs[w] != nil {
			return e, errs[w]
		}
		all = append(all, lat[w]...)
	}
	e.AckedPerSec = float64(e.Writes) / elapsed.Seconds()
	e.WriteP50us, e.WriteP99us = pr6Pct(all, 50), pr6Pct(all, 99)
	if ws, ok := tree.WALStats(); ok {
		appends, batches := ws.Appends-startAppends, ws.Batches-startBatches
		if batches > 0 {
			e.BatchRatio = float64(appends) / float64(batches)
		}
	}
	if err := tree.CompactNow(); err != nil {
		return e, fmt.Errorf("pr6: compact after throughput run: %w", err)
	}
	if got := tree.Len(); got != len(ds.Objects) {
		return e, fmt.Errorf("pr6: throughput writers=%d: %d live objects after restore+compact, want %d",
			writers, got, len(ds.Objects))
	}
	return e, nil
}

// pr6Pct returns the p-th percentile of xs (nearest-rank on a sorted copy).
func pr6Pct(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p / 100 * float64(len(s)-1))
	return s[i]
}
