package main

import (
	"fmt"

	"spbtree/internal/core"
)

// ablation — design-choice ablations beyond the paper's own parameter
// studies: Lemma 2's computation-free inclusion, Algorithm 1's computeSFC
// merge step, and the approximate-kNN budget/recall trade-off.
func ablation(cfg config) error {
	header(cfg.out, "Ablations: Lemma 2, computeSFC merge, approximate kNN")

	// Lemma 2 and the merge step matter most for range queries on discrete
	// metrics (cells are exact distances there).
	for _, name := range []string{"words", "signature"} {
		ds := scaledDataset(cfg, name)
		fmt.Fprintf(cfg.out, "\n[%s] range queries\n%-28s %5s %10s %12s %12s\n",
			ds.Name, "variant", "r%", "PA", "compdists", "time")
		variants := []struct {
			label string
			opts  core.Options
		}{
			{"full (paper)", core.Options{}},
			{"without Lemma 2", core.Options{DisableLemma2: true}},
			{"without computeSFC merge", core.Options{DisableSFCMerge: true}},
			{"without both", core.Options{DisableLemma2: true, DisableSFCMerge: true}},
		}
		for _, v := range variants {
			tree, err := buildSPB(ds, cfg.seed, v.opts)
			if err != nil {
				return err
			}
			// Lemma 2 fires when a pivot ball of radius r−d(q,p) is
			// non-empty, so its savings grow with the radius.
			for _, rp := range []float64{8, 32, 64} {
				r := rp / 100 * ds.Distance.MaxDistance()
				m, err := runRange(spbAdapter{tree}, ds.Queries(cfg.queries), r)
				if err != nil {
					return err
				}
				fmt.Fprintf(cfg.out, "%-28s %5g %10.1f %12.1f %12v\n", v.label, rp, m.pa, m.cd, m.t)
			}
		}
	}

	// Approximate kNN: recall vs verification budget.
	ds := scaledDataset(cfg, "color")
	tree, err := buildSPB(ds, cfg.seed, core.Options{})
	if err != nil {
		return err
	}
	const k = 10
	queries := ds.Queries(cfg.queries)
	fmt.Fprintf(cfg.out, "\n[%s] approximate kNN, k=%d\n%10s %8s %12s\n", ds.Name, k, "budget", "recall", "compdists")
	for _, budget := range []int{0, k, 2 * k, 5 * k, 20 * k} {
		var hits, total int
		var cd float64
		for _, q := range queries {
			exact, err := tree.KNN(q, k)
			if err != nil {
				return err
			}
			ids := map[uint64]bool{}
			for _, r := range exact {
				ids[r.Object.ID()] = true
			}
			tree.ResetStats()
			approx, err := tree.KNNApprox(q, k, budget)
			if err != nil {
				return err
			}
			cd += float64(tree.TakeStats().DistanceComputations)
			for _, r := range approx {
				if ids[r.Object.ID()] {
					hits++
				}
			}
			total += len(exact)
		}
		label := fmt.Sprintf("%d", budget)
		if budget == 0 {
			label = "exact"
		}
		fmt.Fprintf(cfg.out, "%10s %7.1f%% %12.1f\n", label,
			100*float64(hits)/float64(total), cd/float64(len(queries)))
	}
	return nil
}
