package main

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/page"
	"spbtree/internal/sfc"
)

// toolConfig is persisted next to the index so query/stats reconstruct the
// same metric without re-specifying every parameter.
type toolConfig struct {
	Type   string `json:"type"`
	Dim    int    `json:"dim,omitempty"`    // vectors
	Width  int    `json:"width,omitempty"`  // signatures, bytes
	MaxLen int    `json:"maxlen,omitempty"` // words, for d+
}

const (
	indexFile  = core.IndexPagesFile
	dataFile   = core.DataPagesFile
	metaFile   = core.MetaFile
	configFile = "config.json"
)

// kind bundles a dataset type's metric, codec and parsers.
type kind struct {
	dist  metric.DistanceFunc
	codec metric.Codec
	// parse turns an input line into an object.
	parse func(id uint64, line string) (metric.Object, error)
	// describe renders an object for query output.
	describe func(o metric.Object) string
}

func kindFor(cfg toolConfig) (kind, error) {
	switch cfg.Type {
	case "words":
		maxLen := cfg.MaxLen
		if maxLen == 0 {
			maxLen = 64
		}
		return kind{
			dist:  metric.EditDistance{MaxLen: maxLen},
			codec: metric.StrCodec{},
			parse: func(id uint64, line string) (metric.Object, error) {
				return metric.NewStr(id, line), nil
			},
			describe: func(o metric.Object) string { return o.(*metric.Str).S },
		}, nil
	case "vectors":
		if cfg.Dim <= 0 {
			return kind{}, fmt.Errorf("vectors need -dim")
		}
		return kind{
			dist:  metric.L2(cfg.Dim),
			codec: metric.VectorCodec{Dim: cfg.Dim},
			parse: func(id uint64, line string) (metric.Object, error) {
				fields := strings.Split(line, ",")
				if len(fields) != cfg.Dim {
					return nil, fmt.Errorf("line has %d fields, want %d", len(fields), cfg.Dim)
				}
				coords := make([]float64, cfg.Dim)
				for i, f := range fields {
					v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
					if err != nil {
						return nil, fmt.Errorf("field %d: %w", i, err)
					}
					coords[i] = v
				}
				return metric.NewVector(id, coords), nil
			},
			describe: func(o metric.Object) string {
				v := o.(*metric.Vector)
				parts := make([]string, len(v.Coords))
				for i, c := range v.Coords {
					parts[i] = strconv.FormatFloat(c, 'g', 4, 64)
				}
				return strings.Join(parts, ",")
			},
		}, nil
	case "dna":
		return kind{
			dist:  metric.TrigramAngular{},
			codec: metric.SeqCodec{},
			parse: func(id uint64, line string) (metric.Object, error) {
				return metric.NewSeq(id, line), nil
			},
			describe: func(o metric.Object) string { return o.(*metric.Seq).S },
		}, nil
	case "signatures":
		if cfg.Width <= 0 {
			return kind{}, fmt.Errorf("signatures need a width (derived from the first input line)")
		}
		return kind{
			dist:  metric.Hamming{Bytes: cfg.Width},
			codec: metric.BitStringCodec{Bytes: cfg.Width},
			parse: func(id uint64, line string) (metric.Object, error) {
				b, err := hex.DecodeString(line)
				if err != nil {
					return nil, err
				}
				if len(b) != cfg.Width {
					return nil, fmt.Errorf("signature is %d bytes, want %d", len(b), cfg.Width)
				}
				return metric.NewBitString(id, b), nil
			},
			describe: func(o metric.Object) string {
				return hex.EncodeToString(o.(*metric.BitString).Bits)
			},
		}, nil
	}
	return kind{}, fmt.Errorf("unknown type %q (words|vectors|dna|signatures)", cfg.Type)
}

func cmdBuild(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory (created)")
	typ := fs.String("type", "", "dataset type: words|vectors|dna|signatures")
	in := fs.String("in", "", "input file, one object per line")
	dim := fs.Int("dim", 0, "vector dimensionality")
	pivots := fs.Int("pivots", 0, "number of pivots (0 = default 5)")
	curve := fs.String("curve", "hilbert", "SFC: hilbert|zorder")
	maxObjects := fs.Int("max", 0, "cap the number of indexed lines (0 = all)")
	durable := fs.Bool("durable", false, "build a durable index (WAL + generations) that accepts crash-safe inserts/deletes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *typ == "" || *in == "" {
		return fmt.Errorf("build needs -dir, -type and -in")
	}

	lines, err := readLines(*in, *maxObjects)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		return fmt.Errorf("no input lines in %s", *in)
	}
	cfg := toolConfig{Type: *typ, Dim: *dim}
	if *typ == "signatures" {
		cfg.Width = len(lines[0]) / 2
	}
	if *typ == "words" {
		maxLen := 0
		for _, l := range lines {
			if len(l) > maxLen {
				maxLen = len(l)
			}
		}
		cfg.MaxLen = maxLen
	}
	k, err := kindFor(cfg)
	if err != nil {
		return err
	}
	objs := make([]metric.Object, 0, len(lines))
	for i, line := range lines {
		o, err := k.parse(uint64(i), line)
		if err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
		objs = append(objs, o)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	kindCurve := sfc.Hilbert
	if *curve == "zorder" {
		kindCurve = sfc.ZOrder
	}
	start := time.Now()
	var tree *core.Tree
	if *durable {
		// CreateDurable owns the generation layout and its page stores; the
		// WAL is created empty next to generation 1.
		tree, err = core.CreateDurable(*dir, objs, core.Options{
			Distance:  k.dist,
			Codec:     k.codec,
			NumPivots: *pivots,
			Curve:     kindCurve,
		}, core.DurableOptions{})
		if err != nil {
			return err
		}
		if err := tree.Close(); err != nil {
			return err
		}
	} else {
		idx, err := page.NewFileStore(filepath.Join(*dir, indexFile))
		if err != nil {
			return err
		}
		data, err := page.NewFileStore(filepath.Join(*dir, dataFile))
		if err != nil {
			idx.Close()
			return err
		}
		tree, err = core.Build(objs, core.Options{
			Distance:   k.dist,
			Codec:      k.codec,
			NumPivots:  *pivots,
			Curve:      kindCurve,
			IndexStore: idx,
			DataStore:  data,
		})
		if err != nil {
			idx.Close()
			data.Close()
			return err
		}
		if err := tree.SaveAtomic(*dir); err != nil {
			tree.Close()
			return err
		}
		if err := tree.Close(); err != nil {
			return err
		}
	}
	cj, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, configFile), cj, 0o644); err != nil {
		return err
	}
	layout := "static"
	if *durable {
		layout = "durable"
	}
	fmt.Fprintf(out, "indexed %d objects in %v: %d pivots, %s curve, %s layout, %.1f KB\n",
		tree.Len(), time.Since(start).Round(time.Millisecond),
		len(tree.Pivots()), tree.CurveKind(), layout, float64(tree.StorageBytes())/1024)
	return nil
}

// dirKind reads the directory's config.json and resolves its metric.
func dirKind(dir string) (kind, error) {
	cj, err := os.ReadFile(filepath.Join(dir, configFile))
	if err != nil {
		return kind{}, err
	}
	var cfg toolConfig
	if err := json.Unmarshal(cj, &cfg); err != nil {
		return kind{}, fmt.Errorf("parse %s: %w", configFile, err)
	}
	return kindFor(cfg)
}

// openTree reopens a persisted index directory, validating the meta footer
// and arming page checksums (core.Load). A durable directory (CURRENT file
// present) reopens through core.OpenDurable, replaying the WAL tail so
// queries see every acknowledged write.
func openTree(dir string) (*core.Tree, kind, func(), error) {
	k, err := dirKind(dir)
	if err != nil {
		return nil, kind{}, nil, err
	}
	lopts := core.LoadOptions{Distance: k.dist, Codec: k.codec}
	var tree *core.Tree
	if _, serr := os.Stat(filepath.Join(dir, core.CurrentFile)); serr == nil {
		tree, err = core.OpenDurable(dir, lopts, core.DurableOptions{})
	} else {
		tree, err = core.Load(dir, lopts)
	}
	if err != nil {
		return nil, kind{}, nil, err
	}
	return tree, k, func() { tree.Close() }, nil
}

func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify needs -dir")
	}
	tree, _, closeAll, err := openTree(*dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return err
		}
		return fmt.Errorf("%w\nthe index cannot be opened; run \"spbtool repair -dir %s\" to rebuild it", err, *dir)
	}
	defer closeAll()
	start := time.Now()
	err = tree.VerifyIntegrity()
	if err == nil {
		fmt.Fprintf(out, "ok: %d objects, %.1f KB verified in %v\n",
			tree.Len(), float64(tree.StorageBytes())/1024, time.Since(start).Round(time.Millisecond))
		return nil
	}
	var ie *core.IntegrityError
	if errors.As(err, &ie) {
		// One corrupt page makes every record on it unreadable; collapse
		// the per-record repeats into one line with a count so the page
		// list stays scannable.
		repeats := 0
		var last core.Corruption
		flush := func() {
			if repeats > 1 {
				fmt.Fprintf(out, "corrupt: … %d more records on the same corrupt page\n", repeats-1)
			}
			repeats = 0
		}
		for _, c := range ie.Corruptions {
			if repeats > 0 && c.Component == last.Component && c.HasPage && last.HasPage && c.Page == last.Page {
				repeats++
				last = c
				continue
			}
			flush()
			fmt.Fprintf(out, "corrupt: %s\n", c)
			repeats, last = 1, c
		}
		flush()
		return fmt.Errorf("%d corruption finding(s); run \"spbtool repair -dir %s\" to rebuild from surviving objects", len(ie.Corruptions), *dir)
	}
	return err
}

func cmdRepair(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("repair needs -dir")
	}
	k, err := dirKind(*dir)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := core.Repair(*dir, core.LoadOptions{Distance: k.dist, Codec: k.codec})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "repaired in %v: %d objects salvaged, %d index entries dropped\n",
		time.Since(start).Round(time.Millisecond), rep.Salvaged, rep.Dropped)
	return nil
}

func cmdQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory")
	q := fs.String("q", "", "query object (same format as input lines)")
	r := fs.Float64("r", -1, "range query radius")
	k := fs.Int("k", 0, "kNN query k")
	showStats := fs.Bool("stats", false, "print the query's per-stage QueryStats breakdown")
	debugAddr := fs.String("debugaddr", "", "serve /debug/vars and /debug/pprof on this address and wait after the query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *q == "" {
		return fmt.Errorf("query needs -dir and -q")
	}
	if (*r < 0) == (*k <= 0) {
		return fmt.Errorf("query needs exactly one of -r or -k")
	}
	tree, kd, closeAll, err := openTree(*dir)
	if err != nil {
		return err
	}
	defer closeAll()
	var ln net.Listener
	if *debugAddr != "" {
		tree.PublishExpvar("spbtree")
		if ln, err = startDebugServer(*debugAddr); err != nil {
			return err
		}
	}
	qobj, err := kd.parse(1<<63, *q)
	if err != nil {
		return fmt.Errorf("parse query: %w", err)
	}

	tree.ResetStats()
	start := time.Now()
	var results []core.Result
	var qs core.QueryStats
	if *r >= 0 {
		results, qs, err = tree.RangeSearchWithStats(qobj, *r)
	} else {
		results, qs, err = tree.KNNWithStats(qobj, *k)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := tree.TakeStats()
	for _, res := range results {
		fmt.Fprintf(out, "%-12d d=%-10.4g %s\n", res.Object.ID(), res.Dist, kd.describe(res.Object))
	}
	fmt.Fprintf(out, "-- %d results in %v (PA=%d, compdists=%d)\n",
		len(results), elapsed.Round(time.Microsecond), st.PageAccesses, st.DistanceComputations)
	if *showStats {
		printQueryStats(out, qs)
	}
	if ln != nil {
		holdDebugServer(out, ln)
	}
	return nil
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dir := fs.String("dir", "", "index directory")
	probe := fs.Bool("probe", false, "run a cold 10-NN probe query (first pivot as query object) and print its per-stage stats")
	debugAddr := fs.String("debugaddr", "", "serve /debug/vars and /debug/pprof on this address and wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("stats needs -dir")
	}
	tree, kd, closeAll, err := openTree(*dir)
	if err != nil {
		return err
	}
	defer closeAll()
	fmt.Fprintf(out, "objects:    %d\n", tree.Len())
	fmt.Fprintf(out, "metric:     %s (d+ = %g)\n", kd.dist.Name(), kd.dist.MaxDistance())
	fmt.Fprintf(out, "pivots:     %d\n", len(tree.Pivots()))
	fmt.Fprintf(out, "curve:      %s, %d bits/dim, delta %g\n", tree.CurveKind(), tree.Bits(), tree.Delta())
	fmt.Fprintf(out, "storage:    %.1f KB\n", float64(tree.StorageBytes())/1024)
	if *probe && tree.Len() > 0 {
		tree.ResetStats()
		_, qs, err := tree.KNNWithStats(tree.Pivots()[0], 10)
		if err != nil {
			return err
		}
		printQueryStats(out, qs)
	}
	if *debugAddr != "" {
		tree.PublishExpvar("spbtree")
		ln, err := startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		holdDebugServer(out, ln)
	}
	return nil
}

func readLines(path string, max int) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines = append(lines, line)
		if max > 0 && len(lines) >= max {
			break
		}
	}
	return lines, sc.Err()
}
