package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spbtree/internal/core"
	"spbtree/internal/wal"
)

// cmdWAL implements the operator's view of a durable index's write-ahead
// log:
//
//	spbtool wal inspect -dir DIR   segment list, record counts, LSN range
//	spbtool wal replay  -dir DIR   print every surviving record
//
// Both accept the durable index directory (they descend into its wal/
// subdirectory) or a WAL directory itself. Both are read-only: torn tails
// are reported, not repaired (reopening the index repairs them).
func cmdWAL(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("wal needs a subcommand: inspect|replay")
	}
	sub := args[0]
	fs := flag.NewFlagSet("wal "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "durable index directory (or its wal/ subdirectory)")
	after := fs.Uint64("after", 0, "replay only records with LSN greater than this")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("wal %s needs -dir", sub)
	}
	walDir := *dir
	if st, err := os.Stat(filepath.Join(walDir, core.WALDir)); err == nil && st.IsDir() {
		walDir = filepath.Join(walDir, core.WALDir)
	}
	switch sub {
	case "inspect":
		return walInspect(walDir, out)
	case "replay":
		return walReplay(walDir, *after, out)
	}
	return fmt.Errorf("unknown wal subcommand %q (inspect|replay)", sub)
}

// walInspect summarizes the log: one line per segment, then the record
// totals a full replay observes. A replay error below the newest segment is
// real corruption and is surfaced after the segment listing so the operator
// sees which files exist.
func walInspect(walDir string, out io.Writer) error {
	segs, err := wal.Segments(walDir, nil)
	if err != nil {
		return fmt.Errorf("list segments: %w", err)
	}
	if len(segs) == 0 {
		fmt.Fprintf(out, "no WAL segments in %s\n", walDir)
		return nil
	}
	// Count records per segment by replaying and bucketing each LSN into the
	// segment whose range covers it.
	perSeg := make([]int, len(segs))
	counts := map[wal.RecordType]int{}
	var first, last uint64
	var bytes int64
	_, rerr := wal.Replay(walDir, nil, 0, func(rec wal.Record) error {
		if first == 0 {
			first = rec.LSN
		}
		last = rec.LSN
		counts[rec.Type]++
		bytes += int64(len(rec.Payload))
		for i := len(segs) - 1; i >= 0; i-- {
			if rec.LSN >= segs[i].FirstLSN {
				perSeg[i]++
				break
			}
		}
		return nil
	})
	for i, seg := range segs {
		var size int64
		if st, err := os.Stat(filepath.Join(walDir, seg.Name)); err == nil {
			size = st.Size()
		}
		fmt.Fprintf(out, "%s  first-lsn=%d  records=%d  %.1f KB\n",
			seg.Name, seg.FirstLSN, perSeg[i], float64(size)/1024)
	}
	if last == 0 {
		fmt.Fprintf(out, "-- no records\n")
	} else {
		fmt.Fprintf(out, "-- %d records (LSN %d..%d, %.1f KB of payload)",
			counts[wal.RecInsert]+counts[wal.RecDelete], first, last, float64(bytes)/1024)
		fmt.Fprintf(out, ": %d insert, %d delete\n", counts[wal.RecInsert], counts[wal.RecDelete])
	}
	if rerr != nil {
		return fmt.Errorf("replay stopped at LSN %d: %w", last, rerr)
	}
	return nil
}

// walReplay prints every record surviving torn-tail truncation, one line per
// LSN. Payloads are codec-encoded by the index; the tool prints their size
// rather than guessing at the codec.
func walReplay(walDir string, after uint64, out io.Writer) error {
	n := 0
	lastLSN, err := wal.Replay(walDir, nil, after, func(rec wal.Record) error {
		fmt.Fprintf(out, "lsn=%-10d %-7s %d bytes\n", rec.LSN, rec.Type, len(rec.Payload))
		n++
		return nil
	})
	if err != nil {
		return fmt.Errorf("replay stopped after %d records: %w", n, err)
	}
	fmt.Fprintf(out, "-- %d records, last LSN %d\n", n, lastLSN)
	return nil
}
