package main

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"spbtree/internal/core"
)

// startDebugServer serves expvar (/debug/vars) and pprof (/debug/pprof/) on
// addr and returns the bound listener, so callers can report the effective
// address (addr may use port 0) and close it on shutdown.
func startDebugServer(addr string) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln, nil
}

// holdDebugServer blocks until interrupted so a human can scrape the debug
// endpoints after the command's work is done.
func holdDebugServer(out io.Writer, ln net.Listener) {
	fmt.Fprintf(out, "serving /debug/vars and /debug/pprof on http://%s — Ctrl-C to exit\n", ln.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	ln.Close()
}

// printQueryStats renders one query's per-stage breakdown (DESIGN.md §7).
func printQueryStats(out io.Writer, qs core.QueryStats) {
	fmt.Fprintf(out, "stats[%s]:\n", qs.Op)
	fmt.Fprintf(out, "  filter:  nodes read %d, pruned %d; entries scanned %d, pruned %d, skipped %d",
		qs.NodesRead, qs.NodesPruned, qs.EntriesScanned, qs.EntriesPruned, qs.EntriesSkipped)
	if qs.HeapPushes > 0 {
		fmt.Fprintf(out, "; heap pushes %d", qs.HeapPushes)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "  verify:  %d verified, %d discarded, %d by Lemma 2; %d results\n",
		qs.Verified, qs.Discarded, qs.Lemma2Included, qs.Results)
	fmt.Fprintf(out, "  cost:    compdists %d; PA %d (index %d + data %d); cache hits %d index, %d data\n",
		qs.Compdists, qs.PageAccesses(), qs.IndexPA, qs.DataPA, qs.IndexCacheHits, qs.DataCacheHits)
	fmt.Fprintf(out, "  time:    total %v (plan %v, filter %v, verify %v)\n",
		qs.Elapsed.Round(time.Microsecond), qs.PlanTime.Round(time.Microsecond),
		qs.FilterTime.Round(time.Microsecond), qs.VerifyTime.Round(time.Microsecond))
}
