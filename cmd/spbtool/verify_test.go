package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildVecIndex builds a small on-disk vector index and returns its
// directory and input lines.
func buildVecIndex(t *testing.T, n int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("%.4f,%.4f,%.4f", rng.Float64(), rng.Float64(), rng.Float64()))
	}
	in := writeInput(t, dir, "vecs.csv", lines)
	idxDir := filepath.Join(dir, "idx")
	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", idxDir, "-type", "vectors", "-dim", "3", "-in", in}, &sb); err != nil {
		t.Fatal(err)
	}
	return idxDir, lines
}

func TestVerifyHealthyIndex(t *testing.T) {
	idxDir, _ := buildVecIndex(t, 300)
	var sb strings.Builder
	if err := cmdVerify([]string{"-dir", idxDir}, &sb); err != nil {
		t.Fatalf("verify on a fresh index: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "ok: 300 objects") {
		t.Errorf("verify output:\n%s", sb.String())
	}
}

func TestVerifyDetectsAndRepairRecoversPageDamage(t *testing.T) {
	idxDir, lines := buildVecIndex(t, 400)

	// Flip bytes in the middle of the data file: verify must list the
	// damage and fail.
	dataPath := filepath.Join(idxDir, dataFile)
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(dataPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	err = cmdVerify([]string{"-dir", idxDir}, &sb)
	if err == nil {
		t.Fatalf("verify passed on a corrupt index:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "corrupt:") {
		t.Errorf("verify did not list findings:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "repair") {
		t.Errorf("verify error does not point at repair: %v", err)
	}

	// Repair salvages the surviving objects and verify passes again.
	sb.Reset()
	if err := cmdRepair([]string{"-dir", idxDir}, &sb); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !strings.Contains(sb.String(), "salvaged") {
		t.Errorf("repair output:\n%s", sb.String())
	}
	sb.Reset()
	if err := cmdVerify([]string{"-dir", idxDir}, &sb); err != nil {
		t.Fatalf("verify after repair: %v\n%s", err, sb.String())
	}

	// The repaired index still answers queries.
	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", lines[0], "-k", "3"}, &sb); err != nil {
		t.Fatalf("query after repair: %v", err)
	}
	if !strings.Contains(sb.String(), "3 results") {
		t.Errorf("query output after repair:\n%s", sb.String())
	}
}

func TestRepairAfterMetaDestruction(t *testing.T) {
	idxDir, lines := buildVecIndex(t, 250)
	if err := os.WriteFile(filepath.Join(idxDir, metaFile), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	// verify refuses the unopenable index and points at repair.
	var sb strings.Builder
	if err := cmdVerify([]string{"-dir", idxDir}, &sb); err == nil {
		t.Fatal("verify opened an index with a destroyed meta")
	}

	sb.Reset()
	if err := cmdRepair([]string{"-dir", idxDir}, &sb); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !strings.Contains(sb.String(), "250 objects salvaged") {
		t.Errorf("repair output:\n%s", sb.String())
	}
	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", lines[3], "-k", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "d=0 ") {
		t.Errorf("recovered index lost the query object:\n%s", sb.String())
	}
}

func TestVerifyRepairFlagErrors(t *testing.T) {
	if err := cmdVerify([]string{}, os.Stderr); err == nil {
		t.Error("verify without -dir accepted")
	}
	if err := cmdRepair([]string{}, os.Stderr); err == nil {
		t.Error("repair without -dir accepted")
	}
	if err := cmdRepair([]string{"-dir", t.TempDir()}, os.Stderr); err == nil {
		t.Error("repair on an empty directory accepted")
	}
}
