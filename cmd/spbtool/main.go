// Command spbtool builds, persists and queries SPB-tree indexes from the
// command line — the downstream-user entry point complementing the library
// API. An index lives in a directory of three files: index.pages (B+-tree),
// data.pages (RAF) and tree.meta.
//
//	spbtool build -dir idx -type words  -in /usr/share/dict/words
//	spbtool build -dir idx -type vectors -dim 16 -in features.csv
//	spbtool query -dir idx -type words  -q "defoliate" -r 2
//	spbtool query -dir idx -type words  -q "defoliate" -k 10
//	spbtool explain -dir idx -q "defoliate" -k 10
//	spbtool explain -dir shard0,shard1,shard2 -q "defoliate" -r 2
//	spbtool stats -dir idx -type words
//	spbtool verify -dir idx
//	spbtool repair -dir idx
//	spbtool build -dir idx -type words -in words.txt -durable
//	spbtool wal inspect -dir idx
//	spbtool wal replay -dir idx -after 100
//
// -durable builds the generation/WAL layout (DESIGN.md §11) whose index
// accepts crash-safe inserts and deletes when served by spbserve; the wal
// subcommands examine such an index's write-ahead log.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:], os.Stdout)
	case "query":
		err = cmdQuery(os.Args[2:], os.Stdout)
	case "explain":
		err = cmdExplain(os.Args[2:], os.Stdout)
	case "stats":
		err = cmdStats(os.Args[2:], os.Stdout)
	case "verify":
		err = cmdVerify(os.Args[2:], os.Stdout)
	case "repair":
		err = cmdRepair(os.Args[2:], os.Stdout)
	case "wal":
		err = cmdWAL(os.Args[2:], os.Stdout)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "spbtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spbtool <build|query|explain|stats|verify|repair|wal> [flags]

  build   -dir DIR -type {words|vectors|dna|signatures} [-dim D] -in FILE
          [-pivots N] [-curve {hilbert|zorder}] [-durable]
  query   -dir DIR (-r RADIUS | -k K) -q QUERY [-stats] [-debugaddr ADDR]
  explain -dir DIR[,DIR...] (-r RADIUS | -k K) -q QUERY
          print the planner's decision, cost estimates and — with several
          directories treated as forest shards — the shard visit order,
          without executing the query (DESIGN.md §15)
  stats   -dir DIR [-probe] [-debugaddr ADDR]
  verify -dir DIR    audit every page, record and invariant; list corruptions
  repair -dir DIR    rebuild the index from the objects that survive
  wal    inspect|replay -dir DIR   examine a durable index's write-ahead log

-stats prints the query's per-stage breakdown (pruning counts, compdists,
index/data page accesses, stage wall clocks — see DESIGN.md §7); -debugaddr
serves expvar aggregate metrics and pprof profiles over HTTP.`)
}
