package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"spbtree/internal/core"
)

// cmdExplain prints the adaptive planner's view of a query — the cost-model
// estimate, the worker decision and, when several directories are given (each
// treated as one forest shard), the shard relevance hints and staged visit
// order — without executing anything (DESIGN.md §15). It answers "what would
// the engine do, and why" for a query that may be too expensive to run.
func cmdExplain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	dirs := fs.String("dir", "", "index directory, or a comma-separated list treated as forest shards")
	q := fs.String("q", "", "query object (same format as input lines)")
	r := fs.Float64("r", -1, "range query radius")
	k := fs.Int("k", 0, "kNN query k")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dirs == "" || *q == "" {
		return fmt.Errorf("explain needs -dir and -q")
	}
	if (*r < 0) == (*k <= 0) {
		return fmt.Errorf("explain needs exactly one of -r or -k")
	}

	var trees []*core.Tree
	var names []string
	defer func() {
		for _, t := range trees {
			t.Close()
		}
	}()
	var kd kind
	for _, dir := range strings.Split(*dirs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		tree, tk, _, err := openTree(dir)
		if err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		trees = append(trees, tree)
		names = append(names, dir)
		if len(trees) == 1 {
			kd = tk
		}
	}
	if len(trees) == 0 {
		return fmt.Errorf("explain needs at least one directory")
	}
	qobj, err := kd.parse(1<<63, *q)
	if err != nil {
		return fmt.Errorf("parse query: %w", err)
	}

	if *r >= 0 {
		fmt.Fprintf(out, "query: range r=%g (plan only — not executed)\n", *r)
	} else {
		fmt.Fprintf(out, "query: kNN k=%d (plan only — not executed)\n", *k)
	}

	hints := make([]core.ShardHint, len(trees))
	for i, t := range trees {
		// The estimate does not need calibrated unit costs, so it prints
		// even when the plan below falls back to fixed behavior. It also
		// refreshes a dirty cost-model snapshot, arming the hints.
		var est core.CostEstimate
		var plan core.PlanInfo
		if *r >= 0 {
			est, err = t.EstimateRange(qobj, *r)
			if err == nil {
				hints[i], err = t.RangeHint(qobj, *r)
			}
			if err == nil {
				plan, err = t.ExplainRange(qobj, *r)
			}
		} else {
			est, err = t.EstimateKNN(qobj, *k)
			if err == nil {
				hints[i], err = t.KNNHint(qobj, *k)
			}
			if err == nil {
				plan, err = t.ExplainKNN(qobj, *k)
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		st := t.PlannerState()

		fmt.Fprintf(out, "\nshard %d (%s): %d objects\n", i, names[i], t.Len())
		fmt.Fprintf(out, "  estimate: EDC=%.1f compdists, EPA=%.1f pages, radius=%g",
			est.EDC, est.EPA, est.Radius)
		if *k > 0 {
			fmt.Fprint(out, " (eND_k)")
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "  plan:     mode=%s workers=%d", plan.Mode, plan.Workers)
		if plan.Mode == core.PlanModePlanned {
			fmt.Fprintf(out, " — predicted serial cost %.2fms = EDC×%.0fns + EPA×%.0fns",
				plan.CostNS/1e6, plan.NSPerCompdist, plan.NSPerPage)
		}
		fmt.Fprintln(out)
		switch {
		case !st.Enabled:
			fmt.Fprintf(out, "  planner:  disabled (single-worker tree or DisablePlanner)\n")
		case !st.Calibrated:
			fmt.Fprintf(out, "  planner:  uncalibrated (%d samples; a fresh process starts cold — the decision above is the fixed fallback)\n", st.Samples)
		default:
			fmt.Fprintf(out, "  planner:  calibrated over %d samples: %.0fns/compdist, %.0fns/page\n",
				st.Samples, st.NSPerCompdist, st.NSPerPage)
		}
	}

	// Shard visit order, mirroring the forest scatter's plan (§15.4): range
	// queries visit every non-prunable shard; kNN visits the most promising
	// shard first to obtain the k-th-distance bound, then probes the rest
	// with it.
	order := make([]int, len(trees))
	for i := range order {
		order[i] = i
	}
	if *r >= 0 {
		fmt.Fprintf(out, "\nshard relevance (range scatter):\n")
		sort.Slice(order, func(a, b int) bool {
			ha, hb := hints[order[a]], hints[order[b]]
			if ha.MinDist != hb.MinDist {
				return ha.MinDist < hb.MinDist
			}
			return order[a] < order[b]
		})
		pruned := 0
		for _, i := range order {
			verdict := "visit"
			if hints[i].Prunable {
				verdict = "pruned (minDist > r)"
				pruned++
			}
			fmt.Fprintf(out, "  shard %d (%s): minDist=%.4g — %s\n", i, names[i], hints[i].MinDist, verdict)
		}
		fmt.Fprintf(out, "  %d of %d shard(s) pruned by summary boxes\n", pruned, len(trees))
		return nil
	}

	sort.Slice(order, func(a, b int) bool {
		ha, hb := hints[order[a]], hints[order[b]]
		if ha.MinDist != hb.MinDist {
			return ha.MinDist < hb.MinDist
		}
		if ha.Estimated && hb.Estimated && ha.EDC != hb.EDC {
			return ha.EDC < hb.EDC
		}
		return order[a] < order[b]
	})
	fmt.Fprintf(out, "\nshard visit order (staged kNN scatter):\n")
	for pos, i := range order {
		cost := "no cost hint (dirty model)"
		if hints[i].Estimated {
			cost = fmt.Sprintf("EDC=%.1f", hints[i].EDC)
		}
		stage := "stage 2: probed with the stage-1 bound"
		if pos == 0 {
			stage = "stage 1: canonical top-k sets the bound"
		}
		if len(trees) == 1 {
			stage = "only shard: plain kNN"
		}
		fmt.Fprintf(out, "  %d. shard %d (%s): minDist=%.4g, %s — %s\n",
			pos+1, i, names[i], hints[i].MinDist, cost, stage)
	}
	return nil
}
