package main

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInput(t *testing.T, dir, name string, lines []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildQueryStatsWords(t *testing.T) {
	dir := t.TempDir()
	words := []string{
		"citrate", "defoliate", "defoliated", "defoliates", "defoliating",
		"defoliation", "dictionary", "word", "ward", "warden",
		"# a comment line", "", "cart", "card",
	}
	in := writeInput(t, dir, "words.txt", words)
	idxDir := filepath.Join(dir, "idx")

	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", idxDir, "-type", "words", "-in", in, "-pivots", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "indexed 12 objects") {
		t.Errorf("build output: %q", sb.String())
	}
	for _, f := range []string{indexFile, dataFile, metaFile, configFile} {
		if _, err := os.Stat(filepath.Join(idxDir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", "defoliate", "-r", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"defoliate", "defoliated", "defoliates", "3 results"} {
		if !strings.Contains(out, want) {
			t.Errorf("range output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", "wird", "-k", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "word") || !strings.Contains(sb.String(), "3 results") {
		t.Errorf("knn output:\n%s", sb.String())
	}

	sb.Reset()
	if err := cmdStats([]string{"-dir", idxDir}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objects:    12") || !strings.Contains(sb.String(), "edit") {
		t.Errorf("stats output:\n%s", sb.String())
	}
}

func TestBuildQueryVectors(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	var lines []string
	for i := 0; i < 200; i++ {
		lines = append(lines, fmt.Sprintf("%.4f,%.4f,%.4f", rng.Float64(), rng.Float64(), rng.Float64()))
	}
	in := writeInput(t, dir, "vecs.csv", lines)
	idxDir := filepath.Join(dir, "idx")
	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", idxDir, "-type", "vectors", "-dim", "3", "-in", in, "-curve", "zorder"}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", lines[7], "-k", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "d=0 ") {
		t.Errorf("query object itself not found at d=0:\n%s", sb.String())
	}
}

func TestBuildQuerySignatures(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	var lines []string
	for i := 0; i < 100; i++ {
		b := make([]byte, 16)
		rng.Read(b)
		lines = append(lines, hex.EncodeToString(b))
	}
	in := writeInput(t, dir, "sigs.txt", lines)
	idxDir := filepath.Join(dir, "idx")
	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", idxDir, "-type", "signatures", "-in", in}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := cmdQuery([]string{"-dir", idxDir, "-q", lines[0], "-r", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), lines[0]) {
		t.Errorf("signature query output:\n%s", sb.String())
	}
}

func TestToolErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdBuild([]string{"-dir", dir}, os.Stderr); err == nil {
		t.Error("build without -type/-in accepted")
	}
	if err := cmdBuild([]string{"-dir", dir, "-type", "nope", "-in", writeInput(t, dir, "x", []string{"a"})}, os.Stderr); err == nil {
		t.Error("unknown type accepted")
	}
	if err := cmdQuery([]string{"-dir", dir, "-q", "x", "-r", "1"}, os.Stderr); err == nil {
		t.Error("query on missing index accepted")
	}
	if err := cmdQuery([]string{"-dir", dir, "-q", "x"}, os.Stderr); err == nil {
		t.Error("query without -r/-k accepted")
	}
	if err := cmdQuery([]string{"-dir", dir, "-q", "x", "-r", "1", "-k", "2"}, os.Stderr); err == nil {
		t.Error("query with both -r and -k accepted")
	}
	if err := cmdBuild([]string{"-dir", dir, "-type", "vectors", "-in", writeInput(t, dir, "v", []string{"1,2"}), "-dim", "3"}, os.Stderr); err == nil {
		t.Error("ragged vector input accepted")
	}
	if err := cmdStats([]string{}, os.Stderr); err == nil {
		t.Error("stats without -dir accepted")
	}
}
