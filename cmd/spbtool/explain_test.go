package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExplainSingleTree: explain prints the estimate, plan and (trivial)
// visit order for one directory, without executing the query.
func TestExplainSingleTree(t *testing.T) {
	dir := t.TempDir()
	words := []string{
		"citrate", "defoliate", "defoliated", "defoliates", "defoliating",
		"defoliation", "dictionary", "word", "ward", "warden", "cart", "card",
	}
	in := writeInput(t, dir, "words.txt", words)
	idxDir := filepath.Join(dir, "idx")
	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", idxDir, "-type", "words", "-in", in, "-pivots", "2"}, &sb); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	if err := cmdExplain([]string{"-dir", idxDir, "-q", "defoliate", "-k", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"not executed", "estimate: EDC=", "plan:", "shard visit order", "only shard"} {
		if !strings.Contains(out, want) {
			t.Errorf("kNN explain missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := cmdExplain([]string{"-dir", idxDir, "-q", "defoliate", "-r", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"range r=1", "shard relevance", "visit"} {
		if !strings.Contains(out, want) {
			t.Errorf("range explain missing %q:\n%s", want, out)
		}
	}
}

// TestExplainMultiShard: several -dir entries are treated as forest shards;
// the kNN explain orders them (stage 1 / stage 2) and the range explain
// prunes a shard whose summary box provably misses the query.
func TestExplainMultiShard(t *testing.T) {
	dir := t.TempDir()
	near := []string{"cart", "card", "care", "cars", "carp", "dart", "tart", "wart"}
	var far []string
	for i := 0; i < 8; i++ {
		far = append(far, strings.Repeat("zyxwvu", 5)+fmt.Sprintf("%02d", i))
	}
	nearIn := writeInput(t, dir, "near.txt", near)
	farIn := writeInput(t, dir, "far.txt", far)
	nearDir := filepath.Join(dir, "near")
	farDir := filepath.Join(dir, "far")
	var sb strings.Builder
	if err := cmdBuild([]string{"-dir", nearDir, "-type", "words", "-in", nearIn, "-pivots", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-dir", farDir, "-type", "words", "-in", farIn, "-pivots", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	both := nearDir + "," + farDir

	sb.Reset()
	if err := cmdExplain([]string{"-dir", both, "-q", "cart", "-k", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"shard visit order", "stage 1", "stage 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-shard kNN explain missing %q:\n%s", want, out)
		}
	}
	// The near shard holds the query itself (minDist 0), so it must run first.
	if !strings.Contains(out, "1. shard 0 ("+nearDir) {
		t.Errorf("near shard not visited first:\n%s", out)
	}

	sb.Reset()
	if err := cmdExplain([]string{"-dir", both, "-q", "cart", "-r", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	// Every far word is ≥ 24 edits from "cart"; its summary box proves it.
	if !strings.Contains(out, "1 of 2 shard(s) pruned") {
		t.Errorf("far shard not pruned:\n%s", out)
	}
	if !strings.Contains(out, "pruned (minDist > r)") {
		t.Errorf("prune verdict line missing:\n%s", out)
	}
}

// TestExplainErrors mirrors TestToolErrors for the explain flag contract.
func TestExplainErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdExplain([]string{"-q", "x", "-r", "1"}, os.Stderr); err == nil {
		t.Error("explain without -dir accepted")
	}
	if err := cmdExplain([]string{"-dir", dir, "-q", "x"}, os.Stderr); err == nil {
		t.Error("explain without -r/-k accepted")
	}
	if err := cmdExplain([]string{"-dir", dir, "-q", "x", "-r", "1", "-k", "2"}, os.Stderr); err == nil {
		t.Error("explain with both -r and -k accepted")
	}
	if err := cmdExplain([]string{"-dir", dir, "-q", "x", "-r", "1"}, os.Stderr); err == nil {
		t.Error("explain on a missing index accepted")
	}
}
