// Command spbserve serves a persisted SPB-tree index over HTTP: range, kNN,
// approximate kNN and similarity-join queries with per-request deadlines,
// insert/delete on durable indexes, bounded concurrency with admission
// control, and per-endpoint metrics on /debug/vars. See the README's
// "Serving" section for a curl walkthrough.
//
// Usage:
//
//	spbserve -dir INDEXDIR [-addr :8080] [-workers N] [-queue N]
//	         [-query-workers K] [-timeout 5s] [-max-timeout 60s] [-nosync] [-graph]
//	spbserve -demo 50000 [-dim 8] [-addr :8080]
//	spbserve -cluster cluster.json -placement ROOT/placement.json [-addr :8080]
//
// -dir serves an index directory written by "spbtool build" (the directory's
// config.json supplies the metric). A durable directory (spbtool build
// -durable) reopens through crash recovery — the WAL tail beyond the last
// checkpoint is replayed, so every acknowledged write survives kill -9 — and
// serves POST /v1/insert and /v1/delete; a plain directory is read-only
// (writes answer 403). -demo builds a transient in-memory index over uniform
// random vectors on a Z-order curve (so /v1/join works) — handy for trying
// the API without building an index first.
//
// -graph builds the approximate graph tier (DESIGN.md §14) over the loaded
// index at startup, so POST /v1/knn serves {"mode":"ann","ef":N} from the
// graph; without it (or with a saved index whose graph.bin is absent or
// stale) mode=ann falls back to exact search. Local modes only — in -cluster
// mode graphs belong to the owning nodes.
//
// -workers bounds concurrent queries (admission control); -query-workers is
// the per-query verifier pool of the parallel execution engine (0 = the
// min(GOMAXPROCS, 8) default, 1 = serial verification). The two compose: all
// verifiers come from one process-wide pool, so saturated queries degrade to
// serial verification instead of multiplying goroutines.
//
// -cluster runs the same HTTP API as a cluster router: queries scatter to
// the nodes owning the relevant shards (see cmd/spbcluster and DESIGN.md
// §12) and gather-merge into answers byte-identical to a single-process
// index; a down node yields the healthy nodes' partial results plus a
// per-node error marker instead of a failure. Router mode adds two admin
// endpoints: GET/POST /admin/placement (inspect or hot-swap the shard
// placement) and POST /admin/handoff {"shard":N,"to":"node"} (move a shard
// live). OPERATIONS.md is the runbook.
//
// SIGINT/SIGTERM trigger a graceful drain: new queries get 503, in-flight
// ones finish under their own deadlines, then the process exits.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/server"
	"spbtree/internal/sfc"
)

// serveConfig mirrors spbtool's config.json: the dataset type and its
// parameters, persisted next to the index at build time.
type serveConfig struct {
	Type   string `json:"type"`
	Dim    int    `json:"dim,omitempty"`
	Width  int    `json:"width,omitempty"`
	MaxLen int    `json:"maxlen,omitempty"`
}

// parsers bundles the request parsers derived from a persisted config: one
// for query objects (reserved id) and one for insert/delete objects (caller
// id).
type parsers struct {
	query server.ParseQueryFunc
	obj   server.ParseObjectFunc
}

// lineParsers derives both parsers from one line-parsing function.
func lineParsers(parse func(id uint64, line string) (metric.Object, error)) parsers {
	return parsers{query: server.TextParser(parse), obj: server.TextObjects(parse)}
}

// resolve returns the metric, codec and request parsers for a persisted
// config.
func (cfg serveConfig) resolve() (metric.DistanceFunc, metric.Codec, parsers, error) {
	switch cfg.Type {
	case "vectors":
		if cfg.Dim <= 0 {
			return nil, nil, parsers{}, fmt.Errorf("config.json: vectors need dim")
		}
		return metric.L2(cfg.Dim), metric.VectorCodec{Dim: cfg.Dim},
			parsers{query: server.VectorParser(cfg.Dim), obj: server.VectorObjects(cfg.Dim)}, nil
	case "words":
		maxLen := cfg.MaxLen
		if maxLen == 0 {
			maxLen = 64
		}
		return metric.EditDistance{MaxLen: maxLen}, metric.StrCodec{},
			lineParsers(func(id uint64, line string) (metric.Object, error) {
				return metric.NewStr(id, line), nil
			}), nil
	case "dna":
		return metric.TrigramAngular{}, metric.SeqCodec{},
			lineParsers(func(id uint64, line string) (metric.Object, error) {
				return metric.NewSeq(id, line), nil
			}), nil
	case "signatures":
		if cfg.Width <= 0 {
			return nil, nil, parsers{}, fmt.Errorf("config.json: signatures need width")
		}
		return metric.Hamming{Bytes: cfg.Width}, metric.BitStringCodec{Bytes: cfg.Width},
			lineParsers(func(id uint64, line string) (metric.Object, error) {
				b, err := hex.DecodeString(strings.TrimSpace(line))
				if err != nil {
					return nil, err
				}
				if len(b) != cfg.Width {
					return nil, fmt.Errorf("signature is %d bytes, want %d", len(b), cfg.Width)
				}
				return metric.NewBitString(id, b), nil
			}), nil
	}
	return nil, nil, parsers{}, fmt.Errorf("config.json: unknown type %q (words|vectors|dna|signatures)", cfg.Type)
}

// openDir loads the persisted index at dir along with its request parsers. A
// directory with a CURRENT file is a durable index (spbtool build -durable):
// it reopens through the recovery path — WAL tail replayed into the delta,
// compactor restarted — and serves the write endpoints. A plain index
// directory loads read-only.
func openDir(dir string, queryWorkers int, nosync bool) (*core.Tree, parsers, error) {
	cj, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, parsers{}, err
	}
	var cfg serveConfig
	if err := json.Unmarshal(cj, &cfg); err != nil {
		return nil, parsers{}, fmt.Errorf("parse config.json: %w", err)
	}
	dist, codec, ps, err := cfg.resolve()
	if err != nil {
		return nil, parsers{}, err
	}
	lopts := core.LoadOptions{Distance: dist, Codec: codec, Workers: queryWorkers}
	var tree *core.Tree
	if _, serr := os.Stat(filepath.Join(dir, core.CurrentFile)); serr == nil {
		tree, err = core.OpenDurable(dir, lopts, core.DurableOptions{NoSync: nosync})
	} else {
		tree, err = core.Load(dir, lopts)
	}
	if err != nil {
		return nil, parsers{}, err
	}
	return tree, ps, nil
}

// buildDemo builds a transient Z-order index over n uniform random vectors.
func buildDemo(n, dim, queryWorkers int) (*core.Tree, parsers, error) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for d := range coords {
			coords[d] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	tree, err := core.Build(objs, core.Options{
		Distance: metric.L2(dim),
		Codec:    metric.VectorCodec{Dim: dim},
		Curve:    sfc.ZOrder,
		Workers:  queryWorkers,
	})
	if err != nil {
		return nil, parsers{}, err
	}
	return tree, parsers{query: server.VectorParser(dim), obj: server.VectorObjects(dim)}, nil
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "index directory written by spbtool build")
	demo := flag.Int("demo", 0, "serve a transient demo index over this many random vectors instead of -dir")
	dim := flag.Int("dim", 8, "demo vector dimensionality")
	workers := flag.Int("workers", 0, "concurrent query limit (0 = GOMAXPROCS)")
	queryWorkers := flag.Int("query-workers", 0, "per-query verifier pool (0 = min(GOMAXPROCS, 8), 1 = serial)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on request-supplied deadlines")
	drainWait := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	nosync := flag.Bool("nosync", false, "skip WAL fsyncs on durable indexes (crash-unsafe; benchmarks only)")
	graph := flag.Bool("graph", false, "build the approximate graph tier at startup so /v1/knn serves mode=ann (local index modes only)")
	clusterCfg := flag.String("cluster", "", "cluster config file: run as the cluster's router instead of serving -dir")
	placementFile := flag.String("placement", "", "persisted placement.json (router mode; default derives the bootstrap placement from -cluster)")
	flag.Parse()

	var tree *core.Tree
	var ps parsers
	var router *routerState
	var err error
	switch {
	case *clusterCfg != "":
		router, ps, err = openCluster(*clusterCfg, *placementFile)
	case *demo > 0:
		fmt.Fprintf(os.Stderr, "building demo index: %d vectors, dim %d\n", *demo, *dim)
		tree, ps, err = buildDemo(*demo, *dim, *queryWorkers)
	case *dir != "":
		tree, ps, err = openDir(*dir, *queryWorkers, *nosync)
	default:
		return errors.New("spbserve needs -dir, -demo or -cluster (see -h)")
	}
	if err != nil {
		return err
	}
	if *graph {
		if tree == nil {
			return errors.New("-graph needs a local index (-dir or -demo); build graphs on the owning nodes in -cluster mode")
		}
		fmt.Fprintf(os.Stderr, "building approximate graph tier over %d objects\n", tree.Len())
		if err := tree.BuildGraph(core.GraphOptions{}); err != nil {
			tree.Close()
			return fmt.Errorf("build graph: %w", err)
		}
	}

	cfg := server.Config{
		ParseQuery:     ps.query,
		ParseObject:    ps.obj,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MetricsName:    "spbserve",
	}
	if router != nil {
		defer router.r.Close()
		cfg.Backend = router.backend
	} else {
		defer tree.Close()
		cfg.Tree = tree
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	handler := srv.Handler()
	if router != nil {
		handler = router.adminMux(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if router != nil {
		p := router.r.Placement()
		fmt.Fprintf(os.Stderr, "routing %d shards across %d nodes (placement v%d) on %s\n",
			p.Shards, len(p.Nodes), p.Version, *addr)
	} else {
		mode := "read-only"
		if tree.Durable() {
			mode = "durable (writes enabled"
			if *nosync {
				mode += ", nosync"
			}
			mode += ")"
		}
		fmt.Fprintf(os.Stderr, "serving %d objects (%s curve, %s) on %s\n",
			tree.Len(), tree.CurveKind(), mode, *addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "%v: draining (budget %v)\n", s, *drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	return httpSrv.Shutdown(ctx)
}

func main() {
	if err := run(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "spbserve:", err)
		os.Exit(1)
	}
}
