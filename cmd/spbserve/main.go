// Command spbserve serves a persisted SPB-tree index over HTTP: range, kNN,
// approximate kNN and similarity-join queries with per-request deadlines,
// bounded concurrency with admission control, and per-endpoint metrics on
// /debug/vars. See the README's "Serving" section for a curl walkthrough.
//
// Usage:
//
//	spbserve -dir INDEXDIR [-addr :8080] [-workers N] [-queue N]
//	         [-query-workers K] [-timeout 5s] [-max-timeout 60s]
//	spbserve -demo 50000 [-dim 8] [-addr :8080]
//
// -dir serves an index directory written by "spbtool build" (the directory's
// config.json supplies the metric). -demo builds a transient in-memory index
// over uniform random vectors on a Z-order curve (so /v1/join works) — handy
// for trying the API without building an index first.
//
// -workers bounds concurrent queries (admission control); -query-workers is
// the per-query verifier pool of the parallel execution engine (0 = the
// min(GOMAXPROCS, 8) default, 1 = serial verification). The two compose: all
// verifiers come from one process-wide pool, so saturated queries degrade to
// serial verification instead of multiplying goroutines.
//
// SIGINT/SIGTERM trigger a graceful drain: new queries get 503, in-flight
// ones finish under their own deadlines, then the process exits.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spbtree/internal/core"
	"spbtree/internal/metric"
	"spbtree/internal/server"
	"spbtree/internal/sfc"
)

// serveConfig mirrors spbtool's config.json: the dataset type and its
// parameters, persisted next to the index at build time.
type serveConfig struct {
	Type   string `json:"type"`
	Dim    int    `json:"dim,omitempty"`
	Width  int    `json:"width,omitempty"`
	MaxLen int    `json:"maxlen,omitempty"`
}

// resolve returns the metric, codec and query parser for a persisted config.
func (cfg serveConfig) resolve() (metric.DistanceFunc, metric.Codec, server.ParseQueryFunc, error) {
	switch cfg.Type {
	case "vectors":
		if cfg.Dim <= 0 {
			return nil, nil, nil, fmt.Errorf("config.json: vectors need dim")
		}
		return metric.L2(cfg.Dim), metric.VectorCodec{Dim: cfg.Dim}, server.VectorParser(cfg.Dim), nil
	case "words":
		maxLen := cfg.MaxLen
		if maxLen == 0 {
			maxLen = 64
		}
		return metric.EditDistance{MaxLen: maxLen}, metric.StrCodec{},
			server.TextParser(func(id uint64, line string) (metric.Object, error) {
				return metric.NewStr(id, line), nil
			}), nil
	case "dna":
		return metric.TrigramAngular{}, metric.SeqCodec{},
			server.TextParser(func(id uint64, line string) (metric.Object, error) {
				return metric.NewSeq(id, line), nil
			}), nil
	case "signatures":
		if cfg.Width <= 0 {
			return nil, nil, nil, fmt.Errorf("config.json: signatures need width")
		}
		return metric.Hamming{Bytes: cfg.Width}, metric.BitStringCodec{Bytes: cfg.Width},
			server.TextParser(func(id uint64, line string) (metric.Object, error) {
				b, err := hex.DecodeString(strings.TrimSpace(line))
				if err != nil {
					return nil, err
				}
				if len(b) != cfg.Width {
					return nil, fmt.Errorf("signature is %d bytes, want %d", len(b), cfg.Width)
				}
				return metric.NewBitString(id, b), nil
			}), nil
	}
	return nil, nil, nil, fmt.Errorf("config.json: unknown type %q (words|vectors|dna|signatures)", cfg.Type)
}

// openDir loads the persisted index at dir along with its query parser.
func openDir(dir string, queryWorkers int) (*core.Tree, server.ParseQueryFunc, error) {
	cj, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, nil, err
	}
	var cfg serveConfig
	if err := json.Unmarshal(cj, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parse config.json: %w", err)
	}
	dist, codec, parse, err := cfg.resolve()
	if err != nil {
		return nil, nil, err
	}
	tree, err := core.Load(dir, core.LoadOptions{Distance: dist, Codec: codec, Workers: queryWorkers})
	if err != nil {
		return nil, nil, err
	}
	return tree, parse, nil
}

// buildDemo builds a transient Z-order index over n uniform random vectors.
func buildDemo(n, dim, queryWorkers int) (*core.Tree, server.ParseQueryFunc, error) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]metric.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for d := range coords {
			coords[d] = rng.Float64()
		}
		objs[i] = metric.NewVector(uint64(i), coords)
	}
	tree, err := core.Build(objs, core.Options{
		Distance: metric.L2(dim),
		Codec:    metric.VectorCodec{Dim: dim},
		Curve:    sfc.ZOrder,
		Workers:  queryWorkers,
	})
	if err != nil {
		return nil, nil, err
	}
	return tree, server.VectorParser(dim), nil
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "index directory written by spbtool build")
	demo := flag.Int("demo", 0, "serve a transient demo index over this many random vectors instead of -dir")
	dim := flag.Int("dim", 8, "demo vector dimensionality")
	workers := flag.Int("workers", 0, "concurrent query limit (0 = GOMAXPROCS)")
	queryWorkers := flag.Int("query-workers", 0, "per-query verifier pool (0 = min(GOMAXPROCS, 8), 1 = serial)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on request-supplied deadlines")
	drainWait := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	flag.Parse()

	var tree *core.Tree
	var parse server.ParseQueryFunc
	var err error
	switch {
	case *demo > 0:
		fmt.Fprintf(os.Stderr, "building demo index: %d vectors, dim %d\n", *demo, *dim)
		tree, parse, err = buildDemo(*demo, *dim, *queryWorkers)
	case *dir != "":
		tree, parse, err = openDir(*dir, *queryWorkers)
	default:
		return errors.New("spbserve needs -dir or -demo (see -h)")
	}
	if err != nil {
		return err
	}
	defer tree.Close()

	srv, err := server.New(server.Config{
		Tree:           tree,
		ParseQuery:     parse,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MetricsName:    "spbserve",
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving %d objects (%s curve) on %s\n",
		tree.Len(), tree.CurveKind(), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "%v: draining (budget %v)\n", s, *drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
	}
	return httpSrv.Shutdown(ctx)
}

func main() {
	if err := run(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "spbserve:", err)
		os.Exit(1)
	}
}
