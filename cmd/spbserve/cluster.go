package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"spbtree/internal/cluster"
)

// routerState is spbserve's router-mode machinery: the scatter-gather
// router, its serving-layer adapter, and the placement file the admin
// endpoints keep in sync.
type routerState struct {
	r             *cluster.Router
	backend       *cluster.ServerBackend
	placementFile string
}

// openCluster builds the router from a cluster config (and, when present,
// the persisted placement written by spbcluster init/rebalance).
func openCluster(cfgPath, placementFile string) (*routerState, parsers, error) {
	cc, err := cluster.LoadConfig(cfgPath)
	if err != nil {
		return nil, parsers{}, err
	}
	placement := cc.Placement()
	if placementFile != "" {
		if b, rerr := os.ReadFile(placementFile); rerr == nil {
			var p cluster.Placement
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, parsers{}, fmt.Errorf("parse %s: %w", placementFile, err)
			}
			placement = &p
		} else if !os.IsNotExist(rerr) {
			return nil, parsers{}, rerr
		}
	}
	_, _, ps, err := serveConfig{Type: cc.Type, Dim: cc.Dim, MaxLen: cc.MaxLen}.resolve()
	if err != nil {
		return nil, parsers{}, err
	}
	_, codec, err := cc.Space()
	if err != nil {
		return nil, parsers{}, err
	}
	r, err := cluster.NewRouter(placement, codec)
	if err != nil {
		return nil, parsers{}, err
	}
	// A node answering ErrNotOwner means a rebalance completed behind this
	// router's back; re-reading the persisted placement catches it up.
	if placementFile != "" {
		r.Refresh = func(context.Context) (*cluster.Placement, error) {
			b, err := os.ReadFile(placementFile)
			if err != nil {
				return nil, err
			}
			var p cluster.Placement
			if err := json.Unmarshal(b, &p); err != nil {
				return nil, err
			}
			return &p, nil
		}
	}
	r.Publish("spbcluster_router")
	return &routerState{r: r, backend: &cluster.ServerBackend{R: r, Curve: cc.Curve},
		placementFile: placementFile}, ps, nil
}

// adminMux mounts the router-mode admin endpoints in front of the standard
// query API.
func (rs *routerState) adminMux(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("GET /admin/placement", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rs.r.Placement())
	})
	mux.HandleFunc("POST /admin/placement", func(w http.ResponseWriter, r *http.Request) {
		var p cluster.Placement
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := rs.r.SetPlacement(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"version":%d}`+"\n", p.Version)
	})
	mux.HandleFunc("POST /admin/handoff", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Shard int    `json:"shard"`
			To    string `json:"to"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := rs.r.Handoff(r.Context(), req.Shard, req.To); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		np := rs.r.Placement()
		if rs.placementFile != "" {
			b, _ := json.MarshalIndent(np, "", "  ")
			if err := os.WriteFile(rs.placementFile, append(b, '\n'), 0o644); err != nil {
				http.Error(w, fmt.Sprintf("handoff done, but persisting placement failed: %v", err),
					http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"version":%d}`+"\n", np.Version)
	})
	return mux
}
