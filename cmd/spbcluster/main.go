// Command spbcluster operates a multi-node SPB-tree cluster: it lays a
// partitioned index out across node data directories, runs one node's
// shard server, and rebalances shards between running nodes. The companion
// router is "spbserve -cluster", which fronts the nodes with the standard
// HTTP query API. OPERATIONS.md walks through a full 3-node deployment;
// DESIGN.md §12 specifies the protocol and placement machinery.
//
// Usage:
//
//	spbcluster init -config cluster.json -root DIR -dataset words -n 20000 [-seed 1]
//	spbcluster node -config cluster.json -root DIR -name n1 [-debug-addr :9101]
//	spbcluster rebalance -config cluster.json -root DIR -shard 3 -to n2 [-router http://...]
//
// init hash-partitions the dataset into the configured shard count, builds
// one durable shard tree per partition under ROOT/<owner>/shard-NNN (all
// sharing one pivot mapping, so the cluster answers byte-identically to a
// single-process forest), and writes ROOT/placement.json.
//
// node serves the shards found in ROOT/<name> on the address cluster.json
// assigns to <name>. -debug-addr additionally serves /debug/vars with the
// node's per-RPC latency histograms.
//
// rebalance moves one shard to a new owner while the cluster serves
// queries (freeze → copy → activate → flip → drop), rewrites
// ROOT/placement.json, and — when -router names a running router's
// address — POSTs the new placement to /admin/placement so it takes effect
// there immediately (other routers catch up on their next ErrNotOwner).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"spbtree/internal/cluster"
	"spbtree/internal/core"
	"spbtree/internal/dataset"
)

// placementPath is where init and rebalance persist the authoritative
// placement, relative to the cluster root.
func placementPath(root string) string { return filepath.Join(root, "placement.json") }

// loadPlacement reads the persisted placement, falling back to the
// config-derived bootstrap placement when none was written yet.
func loadPlacement(cfg *cluster.Config, root string) (*cluster.Placement, error) {
	b, err := os.ReadFile(placementPath(root))
	if os.IsNotExist(err) {
		return cfg.Placement(), nil
	}
	if err != nil {
		return nil, err
	}
	var p cluster.Placement
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("parse %s: %w", placementPath(root), err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// savePlacement persists the placement atomically (write + rename).
func savePlacement(root string, p *cluster.Placement) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	tmp := placementPath(root) + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, placementPath(root))
}

// cmdInit bootstraps the cluster's on-disk state from a generated dataset.
func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	cfgPath := fs.String("config", "cluster.json", "cluster config file")
	root := fs.String("root", "", "cluster data root (one subdirectory per node)")
	dsName := fs.String("dataset", "words", "dataset generator (words|color|dna|dnaedit)")
	n := fs.Int("n", 20000, "dataset size")
	seed := fs.Int64("seed", 1, "dataset and pivot-selection seed")
	fs.Parse(args)
	if *root == "" {
		return fmt.Errorf("init needs -root")
	}
	cfg, err := cluster.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	ds, ok := dataset.ByName(*dsName, *n, *seed)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dsName)
	}
	dist, codec, err := cfg.Space()
	if err != nil {
		return err
	}
	// The dataset must live in the configured space: a words cluster takes
	// string datasets, a vectors cluster takes vector datasets. The
	// config's metric is authoritative (every node reopens with it).
	if dist.Name() != ds.Distance.Name() {
		return fmt.Errorf("dataset %s uses metric %s, but %s configures %s",
			ds.Name, ds.Distance.Name(), *cfgPath, dist.Name())
	}
	start := time.Now()
	placement, err := cluster.Bootstrap(cfg, ds.Objects, cluster.BootstrapOptions{
		Dir: *root,
		Tree: core.Options{Distance: dist, Codec: codec,
			Curve: cfg.CurveKind(), Seed: *seed},
	})
	if err != nil {
		return err
	}
	if err := savePlacement(*root, placement); err != nil {
		return err
	}
	for _, name := range cfg.NodeNames() {
		fmt.Printf("node %-8s shards %v\n", name, placement.ShardsOf(name))
	}
	fmt.Printf("bootstrapped %d objects into %d shards under %s in %v\n",
		len(ds.Objects), cfg.Shards, *root, time.Since(start).Round(time.Millisecond))
	return nil
}

// cmdNode runs one node's shard server until killed.
func cmdNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ExitOnError)
	cfgPath := fs.String("config", "cluster.json", "cluster config file")
	root := fs.String("root", "", "cluster data root")
	name := fs.String("name", "", "this node's name in the config")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars on this address (empty = off)")
	parallel := fs.Int("parallel", 0, "concurrent shard scans per request (0 = all owned shards)")
	workers := fs.Int("query-workers", 0, "per-query verifier pool (0 = default, 1 = serial)")
	nosync := fs.Bool("nosync", false, "skip WAL fsyncs (crash-unsafe; benchmarks only)")
	fs.Parse(args)
	if *root == "" || *name == "" {
		return fmt.Errorf("node needs -root and -name")
	}
	cfg, err := cluster.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	addr := ""
	for _, nd := range cfg.Nodes {
		if nd.Name == *name {
			addr = nd.Addr
		}
	}
	if addr == "" {
		return fmt.Errorf("node %q is not in %s", *name, *cfgPath)
	}
	dist, codec, err := cfg.Space()
	if err != nil {
		return err
	}
	node, err := cluster.OpenNode(cluster.NodeConfig{
		Name: *name,
		Dir:  cluster.NodeDir(*root, *name),
		Load: core.LoadOptions{Distance: dist, Codec: codec, Workers: *workers},
		Durable:  core.DurableOptions{NoSync: *nosync},
		Parallel: *parallel,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("GET /debug/vars", expvar.Handler())
			http.ListenAndServe(*debugAddr, mux)
		}()
	}
	fmt.Fprintf(os.Stderr, "node %s serving shards %v on %s\n", *name, node.Shards(), addr)
	return node.Serve(ln)
}

// cmdRebalance moves one shard to a new owner through a running cluster.
func cmdRebalance(args []string) error {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	cfgPath := fs.String("config", "cluster.json", "cluster config file")
	root := fs.String("root", "", "cluster data root (for placement.json)")
	shard := fs.Int("shard", -1, "shard to move")
	to := fs.String("to", "", "destination node name")
	routerAddr := fs.String("router", "", "running router's HTTP address to notify (e.g. http://localhost:8080)")
	timeout := fs.Duration("timeout", 5*time.Minute, "handoff deadline")
	fs.Parse(args)
	if *root == "" || *shard < 0 || *to == "" {
		return fmt.Errorf("rebalance needs -root, -shard and -to")
	}
	cfg, err := cluster.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	placement, err := loadPlacement(cfg, *root)
	if err != nil {
		return err
	}
	_, codec, err := cfg.Space()
	if err != nil {
		return err
	}
	router, err := cluster.NewRouter(placement, codec)
	if err != nil {
		return err
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	source := placement.Owners[*shard]
	start := time.Now()
	if err := router.Handoff(ctx, *shard, *to); err != nil {
		return err
	}
	np := router.Placement()
	if err := savePlacement(*root, np); err != nil {
		return err
	}
	fmt.Printf("shard %d moved %s -> %s in %v (placement v%d)\n",
		*shard, source, *to, time.Since(start).Round(time.Millisecond), np.Version)
	if *routerAddr != "" {
		if err := notifyRouter(*routerAddr, np); err != nil {
			return fmt.Errorf("placement saved, but notifying the router failed (it will catch up on its next stale query): %w", err)
		}
		fmt.Printf("router %s updated\n", *routerAddr)
	}
	return nil
}

// notifyRouter POSTs the new placement to a running router's admin
// endpoint.
func notifyRouter(addr string, p *cluster.Placement) error {
	b, err := json.Marshal(p)
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/admin/placement", "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered %s", resp.Status)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: spbcluster <init|node|rebalance> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "init":
		err = cmdInit(os.Args[2:])
	case "node":
		err = cmdNode(os.Args[2:])
	case "rebalance":
		err = cmdRebalance(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want init, node or rebalance)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spbcluster:", err)
		os.Exit(1)
	}
}
