// Command forest demonstrates the distributed extension (the paper's
// future-work direction): a hash-partitioned SPB-tree forest whose shards
// share one pivot mapping and answer queries in parallel, plus a
// shuffle-free distributed similarity join.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"spbtree"
)

func main() {
	const n, dim = 40000, 8
	rng := rand.New(rand.NewSource(3))
	objs := make([]spbtree.Object, n)
	for i := range objs {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		objs[i] = spbtree.NewVector(uint64(i), coords)
	}
	dist := spbtree.L2(dim)

	f, err := spbtree.BuildForest(objs, spbtree.ForestOptions{
		Tree:   spbtree.Options{Distance: dist, Codec: spbtree.VectorCodec{Dim: dim}, Curve: spbtree.ZOrder},
		Shards: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: %d objects across %d shards\n\n", f.Len(), len(f.Shards()))

	// Scatter-gather kNN.
	q := objs[42]
	f.ResetStats()
	start := time.Now()
	nn, err := f.KNN(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	st := f.TakeStats()
	fmt.Printf("10-NN via 8 parallel shards: %v (cluster-wide PA=%d, compdists=%d)\n",
		time.Since(start).Round(time.Microsecond), st.PageAccesses, st.DistanceComputations)
	for _, r := range nn[:3] {
		fmt.Printf("  id %5d  d=%.4f\n", r.Object.ID(), r.Dist)
	}

	// Distributed similarity join: a second forest over fresh data shares
	// the first's pivot mapping, so shard pairs join independently.
	probes := make([]spbtree.Object, 4000)
	for i := range probes {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		probes[i] = spbtree.NewVector(uint64(1_000_000+i), coords)
	}
	fp, err := f.BuildPartner(probes, spbtree.ForestOptions{
		Tree: spbtree.Options{Distance: dist, Codec: spbtree.VectorCodec{Dim: dim}},
	})
	if err != nil {
		log.Fatal(err)
	}
	eps := 0.06 * dist.MaxDistance()
	start = time.Now()
	pairs, err := spbtree.JoinForests(fp, f, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSJ(probes, base, ε=%.3f): %d pairs via %d parallel shard joins in %v\n",
		eps, len(pairs), len(fp.Shards())*len(f.Shards()), time.Since(start).Round(time.Millisecond))
}
