// Command imagesearch models the paper's Color workload: 16-dimensional
// image feature vectors compared under the L5-norm. It builds an SPB-tree,
// runs kNN retrieval, and shows the Section 4.4 cost models at work —
// predicting a query's page accesses and distance computations before
// running it, the way a DBMS optimizer would choose an execution strategy.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spbtree"
)

func main() {
	const n, dim = 20000, 16
	rng := rand.New(rand.NewSource(42))

	// A mixture of "image classes": feature vectors cluster around class
	// prototypes, as real HSV histograms do.
	prototypes := make([][]float64, 24)
	for i := range prototypes {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		prototypes[i] = p
	}
	objs := make([]spbtree.Object, n)
	for i := range objs {
		proto := prototypes[rng.Intn(len(prototypes))]
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = clamp(proto[j] + 0.05*rng.NormFloat64())
		}
		objs[i] = spbtree.NewVector(uint64(i), coords)
	}

	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance: spbtree.L5(dim),
		Codec:    spbtree.VectorCodec{Dim: dim},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d feature vectors: %d pivots, storage %.1f MB\n\n",
		tree.Len(), len(tree.Pivots()), float64(tree.StorageBytes())/(1<<20))

	fmt.Println("query  k  estEDC  actCD  estEPA  actPA   time")
	for qi := 0; qi < 5; qi++ {
		q := objs[rng.Intn(n)]
		const k = 8
		est, err := tree.EstimateKNN(q, k)
		if err != nil {
			log.Fatal(err)
		}
		st, err := tree.Measure(func() error {
			_, err := tree.KNN(q, k)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %2d %7.0f %6d %7.0f %6d %8s\n",
			qi, k, est.EDC, st.DistanceComputations, est.EPA, st.PageAccesses, st.Elapsed.Round(1000))
	}

	// Traversal strategies (paper Table 5): greedy never revisits a RAF
	// page; incremental is optimal in distance computations.
	q := objs[7]
	fmt.Println("\ntraversal   PA  compdists")
	for _, strat := range []spbtree.TraversalStrategy{spbtree.Incremental, spbtree.Greedy} {
		tree.SetTraversal(strat)
		st, err := tree.Measure(func() error {
			_, err := tree.KNN(q, 16)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11v %3d %10d\n", strat, st.PageAccesses, st.DistanceComputations)
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
