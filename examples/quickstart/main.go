// Command quickstart demonstrates the SPB-tree public API end to end:
// build an index over a word set under edit distance, then run a range
// query and a kNN query, printing the paper's cost metrics for each.
package main

import (
	"fmt"
	"log"

	"spbtree"
)

func main() {
	words := []string{
		"citrate", "defoliate", "defoliated", "defoliates", "defoliating",
		"defoliation", "dictionary", "direction", "disconnection", "word",
		"ward", "wart", "warts", "cart", "card", "care", "scare", "share",
		"shard", "sharp", "harp", "hard", "herd", "hard", "heard", "beard",
		"bread", "break", "bleak", "blank", "black", "block", "clock", "cloak",
	}
	objs := make([]spbtree.Object, len(words))
	for i, w := range words {
		objs[i] = spbtree.NewStr(uint64(i), w)
	}

	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance:  spbtree.EditDistance{MaxLen: 16},
		Codec:     spbtree.StrCodec{},
		NumPivots: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d words with %d pivots, %d bits/dim (%s curve), %d bytes\n\n",
		tree.Len(), len(tree.Pivots()), tree.Bits(), tree.CurveKind(), tree.StorageBytes())

	q := spbtree.NewStr(1000, "defoliate")

	tree.ResetStats()
	res, err := tree.RangeQuery(q, 2)
	if err != nil {
		log.Fatal(err)
	}
	st := tree.TakeStats()
	fmt.Printf("range query RQ(%q, r=2): %d results (PA=%d, compdists=%d)\n",
		"defoliate", len(res), st.PageAccesses, st.DistanceComputations)
	for _, r := range res {
		fmt.Printf("  %-14s d<=%.0f exact=%v\n", r.Object.(*spbtree.Str).S, r.Dist, r.Exact)
	}

	tree.ResetStats()
	nn, err := tree.KNN(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	st = tree.TakeStats()
	fmt.Printf("\nkNN query kNN(%q, 3) (PA=%d, compdists=%d)\n",
		"defoliate", st.PageAccesses, st.DistanceComputations)
	for _, r := range nn {
		fmt.Printf("  %-14s d=%.0f\n", r.Object.(*spbtree.Str).S, r.Dist)
	}

	// Updates work like any B+-tree.
	if err := tree.Insert(spbtree.NewStr(2000, "defoliator")); err != nil {
		log.Fatal(err)
	}
	nn, err = tree.KNN(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter inserting %q the 3-NN set is:\n", "defoliator")
	for _, r := range nn {
		fmt.Printf("  %-14s d=%.0f\n", r.Object.(*spbtree.Str).S, r.Dist)
	}
}
