// Command dedup demonstrates the data-cleaning use case motivating the
// paper's similarity join (Definition 4): matching dirty customer names in
// sales records against a clean master register under edit distance. Two
// Z-order SPB-trees share one mapped space and a single merge pass (SJA,
// Algorithm 3) finds all pairs within the typo threshold ε.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spbtree"
)

func main() {
	master := []string{
		"jonathan meyers", "catherine oliveira", "robert kaczmarek",
		"elizabeth warrington", "michael donaldson", "sarah fitzgerald",
		"william harrington", "jennifer castellano", "christopher delacroix",
		"amanda richardson", "daniel kowalczyk", "rebecca summerfield",
		"matthew ostrowski", "nicole vandenberg", "gregory whitfield",
	}
	rng := rand.New(rand.NewSource(7))

	// Sales records: each master name appears several times with typos,
	// plus unrelated names that must not match.
	var sales []string
	for _, name := range master {
		for c := 0; c < 4; c++ {
			sales = append(sales, typo(name, rng))
		}
	}
	for i := 0; i < 30; i++ {
		sales = append(sales, fmt.Sprintf("unrelated customer %02d", i))
	}

	masterObjs := make([]spbtree.Object, len(master))
	for i, s := range master {
		masterObjs[i] = spbtree.NewStr(uint64(i), s)
	}
	salesObjs := make([]spbtree.Object, len(sales))
	for i, s := range sales {
		salesObjs[i] = spbtree.NewStr(uint64(1000+i), s)
	}

	dist := spbtree.EditDistance{MaxLen: 34}
	tq, err := spbtree.Build(masterObjs, spbtree.Options{
		Distance: dist, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, NumPivots: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	to, err := spbtree.Build(salesObjs, spbtree.Options{
		Distance: dist, Codec: spbtree.StrCodec{}, Curve: spbtree.ZOrder, ShareMapping: tq,
	})
	if err != nil {
		log.Fatal(err)
	}

	const eps = 3 // tolerate up to three edits
	tq.ResetStats()
	to.ResetStats()
	pairs, err := spbtree.Join(tq, to, eps)
	if err != nil {
		log.Fatal(err)
	}
	stQ, stO := tq.TakeStats(), to.TakeStats()
	fmt.Printf("SJ(master, sales, ε=%d): %d matches out of %d×%d candidate pairs\n",
		eps, len(pairs), len(master), len(sales))
	fmt.Printf("one merge pass: PA=%d, compdists=%d (nested loop would need %d)\n\n",
		stQ.PageAccesses+stO.PageAccesses,
		stQ.DistanceComputations+stO.DistanceComputations,
		len(master)*len(sales))

	matched := map[string]int{}
	for _, p := range pairs {
		matched[p.Q.(*spbtree.Str).S]++
	}
	for _, name := range master {
		fmt.Printf("%-24s matched %d sales records\n", name, matched[name])
	}
}

// typo injects 1-2 random edits into a name.
func typo(s string, rng *rand.Rand) string {
	b := []byte(s)
	for edits := 1 + rng.Intn(2); edits > 0 && len(b) > 2; edits-- {
		switch rng.Intn(3) {
		case 0: // drop a character
			p := rng.Intn(len(b))
			b = append(b[:p], b[p+1:]...)
		case 1: // duplicate a character
			p := rng.Intn(len(b))
			b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
		default: // swap adjacent characters
			p := rng.Intn(len(b) - 1)
			b[p], b[p+1] = b[p+1], b[p]
		}
	}
	return string(b)
}
