// Command dna models the paper's computational-biology motivation: finding
// similar DNA reads under the tri-gram profile (angular) distance. It also
// demonstrates the greedy kNN traversal, which the paper selects for DNA
// because its low mapping precision makes the incremental strategy touch
// many RAF pages more than once (Table 5).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spbtree"
)

const bases = "ACGT"

func main() {
	const n = 5000
	rng := rand.New(rand.NewSource(11))

	// Reads are mutated copies of a set of gene-family seeds.
	seeds := make([]string, 40)
	for i := range seeds {
		b := make([]byte, 108)
		for j := range b {
			b[j] = bases[rng.Intn(4)]
		}
		seeds[i] = string(b)
	}
	objs := make([]spbtree.Object, n)
	family := make([]int, n)
	for i := range objs {
		f := rng.Intn(len(seeds))
		family[i] = f
		objs[i] = spbtree.NewSeq(uint64(i), mutate(seeds[f], rng, 6))
	}

	tree, err := spbtree.Build(objs, spbtree.Options{
		Distance:  spbtree.TrigramAngular{},
		Codec:     spbtree.SeqCodec{},
		Traversal: spbtree.Greedy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d reads from %d families (%d pivots)\n\n", n, len(seeds), len(tree.Pivots()))

	// For a fresh read from a known family, the nearest indexed reads
	// should come from the same family.
	queryFamily := 3
	q := spbtree.NewSeq(99999, mutate(seeds[queryFamily], rng, 6))
	st, err := tree.Measure(func() error {
		nn, err := tree.KNN(q, 10)
		if err != nil {
			return err
		}
		same := 0
		for _, r := range nn {
			if family[r.Object.ID()] == queryFamily {
				same++
			}
		}
		fmt.Printf("10-NN of a family-%d read: %d/10 neighbors from the same family\n",
			queryFamily, same)
		for _, r := range nn[:3] {
			fmt.Printf("  read %5d  family %2d  d=%.4f\n", r.Object.ID(), family[r.Object.ID()], r.Dist)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy traversal: PA=%d compdists=%d time=%s\n",
		st.PageAccesses, st.DistanceComputations, st.Elapsed.Round(1000))

	tree.SetTraversal(spbtree.Incremental)
	st2, err := tree.Measure(func() error {
		_, err := tree.KNN(q, 10)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental:      PA=%d compdists=%d time=%s\n",
		st2.PageAccesses, st2.DistanceComputations, st2.Elapsed.Round(1000))
}

func mutate(s string, rng *rand.Rand, edits int) string {
	b := []byte(s)
	for m := rng.Intn(edits + 1); m > 0; m-- {
		switch rng.Intn(4) {
		case 0:
			p := rng.Intn(len(b) + 1)
			b = append(b[:p], append([]byte{bases[rng.Intn(4)]}, b[p:]...)...)
		case 1:
			if len(b) > 10 {
				p := rng.Intn(len(b))
				b = append(b[:p], b[p+1:]...)
			}
		default:
			b[rng.Intn(len(b))] = bases[rng.Intn(4)]
		}
	}
	return string(b)
}
