module spbtree

go 1.22
